#include "runtime/queue.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <map>
#include <sstream>

#include "obs/telemetry_server.hpp"
#include "obs/timeline.hpp"
#include "runtime/journal.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

// The event loop's journaled state: every mutation of these fields must
// reach the journal on some intra-file path, or a crash between the
// mutation and the next record makes recovery diverge. clip-analyze's J1
// rule enforces the pairing function-by-function.
// clip-lint: journaled(state_, attempts_, eligible_s_, node_busy_, enforcement_pending_, enforcements_, retry_wakeups_, pending_claws_, running_, mode_, effective_budget_)

namespace clip::runtime {

namespace {

/// Simulated-seconds wait times: 0.125 s … ~2000 s.
const obs::HistogramSpec& wait_s_spec() {
  static const obs::HistogramSpec spec =
      obs::HistogramSpec::exponential(0.125, 2.0, 14);
  return spec;
}

constexpr double kInf = std::numeric_limits<double>::infinity();

void validate_options(const QueueOptions& options) {
  CLIP_REQUIRE(options.cluster_budget.value() > 0.0,
               "cluster_budget must be positive (got " +
                   format_double(options.cluster_budget.value(), 3) + " W)");
  CLIP_REQUIRE(options.min_node_power_w > 0.0,
               "min_node_power_w must be positive (got " +
                   format_double(options.min_node_power_w, 3) + " W)");
  CLIP_REQUIRE(
      options.min_node_power_w <= options.cluster_budget.value(),
      "min_node_power_w (" + format_double(options.min_node_power_w, 3) +
          " W) exceeds cluster_budget (" +
          format_double(options.cluster_budget.value(), 3) + " W)");
  options.retry.validate();
  options.guard.validate();
  options.redist.validate();
}

/// Budget watchdog; the plausibility ceiling defaults to what the machine
/// can physically draw (a healthy node never exceeds it, a spiking meter
/// usually will).
fault::BudgetGuard make_guard(const QueueOptions& options,
                              sim::SimExecutor& executor) {
  fault::BudgetGuardOptions guard_opts = options.guard;
  if (guard_opts.max_plausible_node_w >= 1e9)
    guard_opts.max_plausible_node_w = executor.spec().max_node_w() * 1.5;
  return fault::BudgetGuard(guard_opts, options.cluster_budget);
}

// --- snapshot serialization helpers ---------------------------------------
// Doubles render via obs::format_exact so a restore parses the exact bits;
// tokens are `key=value` separated by spaces, list values use ',' (entries),
// ':' (fields), '/' and ';' (ids) — all characters format_exact never emits.

std::string fx(double v) { return obs::format_exact(v); }

double parse_double(const std::string& s, const char* what) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  CLIP_REQUIRE(!s.empty() && end == s.c_str() + s.size(),
               std::string("bad snapshot ") + what + ": '" + s + "'");
  return v;
}

long long parse_int(const std::string& s, const char* what) {
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  CLIP_REQUIRE(!s.empty() && end == s.c_str() + s.size(),
               std::string("bad snapshot ") + what + ": '" + s + "'");
  return v;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  if (s.empty()) return out;
  std::size_t pos = 0;
  for (;;) {
    const std::size_t next = s.find(sep, pos);
    if (next == std::string::npos) {
      out.push_back(s.substr(pos));
      return out;
    }
    out.push_back(s.substr(pos, next - pos));
    pos = next + 1;
  }
}

std::string join_ints(const std::vector<int>& v, char sep) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out.push_back(sep);
    out += std::to_string(v[i]);
  }
  return out;
}

std::string bits(const std::vector<bool>& v) {
  std::string out(v.size(), '0');
  for (std::size_t i = 0; i < v.size(); ++i)
    if (v[i]) out[i] = '1';
  return out;
}

void restore_bits(std::vector<bool>& v, const std::string& s,
                  const char* what) {
  CLIP_REQUIRE(s.size() == v.size(), std::string("snapshot bitstring '") +
                                         what + "' size mismatch");
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = s[i] == '1';
}

std::map<std::string, std::string> parse_tokens(const std::string& payload) {
  std::map<std::string, std::string> out;
  for (const std::string& token : split(payload, ' ')) {
    const std::size_t eq = token.find('=');
    CLIP_REQUIRE(eq != std::string::npos && eq > 0,
                 "malformed snapshot token: '" + token + "'");
    out[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return out;
}

const std::string& tok(const std::map<std::string, std::string>& m,
                       const std::string& key) {
  const auto it = m.find(key);
  CLIP_REQUIRE(it != m.end(), "snapshot is missing token '" + key + "'");
  return it->second;
}

}  // namespace

const char* to_string(DegradedMode mode) {
  switch (mode) {
    case DegradedMode::kNormal:
      return "NORMAL";
    case DegradedMode::kMeterBlackout:
      return "METER_BLACKOUT";
    case DegradedMode::kBudgetBrownout:
      return "BUDGET_BROWNOUT";
  }
  return "?";
}

PowerAwareJobQueue::PowerAwareJobQueue(sim::SimExecutor& executor,
                                       core::ClipScheduler& scheduler,
                                       QueueOptions options)
    : executor_(&executor), scheduler_(&scheduler), options_(options) {
  validate_options(options);
}

QueueReport PowerAwareJobQueue::run(
    const std::vector<workloads::WorkloadSignature>& jobs) {
  std::vector<QueueJob> wrapped;
  wrapped.reserve(jobs.size());
  for (const auto& j : jobs) wrapped.push_back(QueueJob{j, 0});
  return run(wrapped);
}

QueueReport PowerAwareJobQueue::run(const std::vector<QueueJob>& jobs) {
  QueueEventLoop loop(*executor_, *scheduler_, options_, jobs);
  loop.set_observer(obs_);
  loop.set_fault_injector(injector_);
  loop.set_timeline(timeline_);
  loop.set_journal(journal_);
  return loop.run();
}

QueueEventLoop::QueueEventLoop(sim::SimExecutor& executor,
                               core::ClipScheduler& scheduler,
                               QueueOptions options, std::vector<QueueJob> jobs)
    : executor_(&executor),
      scheduler_(&scheduler),
      options_(options),
      jobs_(std::move(jobs)),
      total_nodes_(executor.spec().nodes),
      total_budget_(options.cluster_budget.value()),
      guard_(make_guard(options, executor)),
      detector_(options.redist),
      redistributor_(options.redist),
      effective_budget_(options.cluster_budget.value()) {
  validate_options(options_);
  CLIP_REQUIRE(!jobs_.empty(), "queue needs at least one job");
  for (const auto& job : jobs_)
    CLIP_REQUIRE(job.requested_nodes >= 0 &&
                     job.requested_nodes <= total_nodes_,
                 "job '" + job.app.name + "' requested_nodes (" +
                     std::to_string(job.requested_nodes) +
                     ") exceeds the cluster's " +
                     std::to_string(total_nodes_) + " nodes");
  report_.jobs.resize(jobs_.size());
  // clip-lint: allow(J1) constructor pre-init: the "begin"+"admit" records written by run_fresh() re-derive this exact state, so nothing existed to lose yet
  state_.assign(jobs_.size(), State::kPending);
  attempts_.assign(jobs_.size(), 0);
  eligible_s_.assign(jobs_.size(), 0.0);
  node_alive_.assign(static_cast<std::size_t>(total_nodes_), true);
  node_busy_.assign(static_cast<std::size_t>(total_nodes_), false);
  enforcement_pending_.assign(static_cast<std::size_t>(total_nodes_), false);
  redist_on_ = options_.redist.enabled;
  next_tick_s_ = options_.redist.period_s;
}

QueueEventLoop::~QueueEventLoop() = default;

obs::TelemetryServer* QueueEventLoop::telemetry_server() const {
  return telemetry_.get();
}

std::string QueueEventLoop::trace_suffix(std::size_t j) const {
  return j < traces_.size() ? " trace=" + traces_[j].hex() : std::string();
}

void QueueEventLoop::publish_status(bool run_active) {
  if (telemetry_ == nullptr) return;
  obs::StatusSnapshot snap;
  snap.now_s = now_;
  int waiting = 0;
  int done = 0;
  for (const State s : state_) {
    if (s == State::kPending) ++waiting;
    if (s == State::kDone) ++done;
  }
  snap.queue_depth = waiting;
  snap.running_jobs = static_cast<int>(running_.size());
  snap.free_watts = free_power();
  snap.mode = to_string(mode_);
  snap.journal_seq =
      journal_ != nullptr ? static_cast<std::uint64_t>(journal_->size()) : 0;
  snap.jobs_completed = done;
  snap.jobs_failed = report_.jobs_failed;
  snap.run_active = run_active;
  telemetry_->publish(snap);
}

int QueueEventLoop::free_nodes() const {
  int free = 0;
  for (int n = 0; n < total_nodes_; ++n)
    if (node_alive_[static_cast<std::size_t>(n)] &&
        !node_busy_[static_cast<std::size_t>(n)])
      ++free;
  return free;
}

double QueueEventLoop::free_power() const {
  double used = 0.0;
  for (const auto& r : running_) used += r.power_w;
  return effective_budget_ - used;
}

std::vector<int> QueueEventLoop::active_node_ids() const {
  std::vector<int> ids;
  for (const auto& r : running_)
    ids.insert(ids.end(), r.node_ids.begin(), r.node_ids.end());
  return ids;
}

double QueueEventLoop::true_cluster_power(double t) const {
  double watts = 0.0;
  for (const auto& r : running_) watts += r.true_power_w;
  return watts + injector_->cap_excess_w(active_node_ids(), t);
}

// Fault windows active at `t` for the flight recorder's `fault.active`
// series (crashes and degrades are permanent; meter faults, cap violations,
// blackouts and budget cuts are windowed — claw-backs truncate the cap
// violations in place).
int QueueEventLoop::faults_active_at(double t) const {
  int active = 0;
  for (const auto& c : plan_->crashes)
    if (c.at_s <= t) ++active;
  for (const auto& d : plan_->degrades)
    if (d.at_s <= t) ++active;
  for (const auto& f : plan_->meter_faults)
    if (f.at_s <= t && t < f.at_s + f.duration_s) ++active;
  for (const auto& v : plan_->cap_violations)
    if (v.at_s <= t && t < v.at_s + v.duration_s) ++active;
  for (const auto& b : plan_->meter_blackouts)
    if (b.at_s <= t && t < b.at_s + b.duration_s) ++active;
  for (const auto& c : plan_->budget_cuts)
    if (c.at_s <= t && t < c.at_s + c.duration_s) ++active;
  return active;
}

bool QueueEventLoop::try_start(std::size_t j) {
  obs::ScopedSpan span(action_obs(), "queue.try_start", "runtime");
  span.arg("app", jobs_[j].app.name);
  // active() gate: hex-formatting the ids costs two string allocations, and
  // try_start runs once per pending job per step — an inert span must not
  // pay that (bench/obs_overhead prices the tracing-on duty cycle).
  if (span.active() && j < traces_.size()) {
    span.arg("trace_id", traces_[j].hex());
    span.arg("span_id", traces_[j].span_hex("queue"));
  }
  const int nodes_avail = free_nodes();
  const double watts_avail = free_power();
  span.arg("free_nodes", nodes_avail);
  span.arg("free_watts", watts_avail);
  if (nodes_avail < 1 ||
      watts_avail < options_.min_node_power_w)
    return false;

  // Shape the job as if the free watts were all its own...
  const core::ScheduleDecision ideal =
      scheduler_->schedule(jobs_[j].app, Watts(watts_avail));
  // ...then constrain to the free nodes (or the job's own MPI launch
  // line) with a proportional power slice.
  const int nodes_wanted =
      jobs_[j].requested_nodes > 0 ? jobs_[j].requested_nodes
                                   : ideal.cluster.nodes;
  if (nodes_wanted > nodes_avail && jobs_[j].requested_nodes > 0)
    return false;  // a predefined decomposition cannot shrink
  const int nodes_used = std::min(nodes_wanted, nodes_avail);
  const double slice =
      watts_avail * nodes_used / std::max(ideal.cluster.nodes, nodes_used);
  if (slice < options_.min_node_power_w * nodes_used) return false;

  const core::ScheduleDecision constrained =
      nodes_used == ideal.cluster.nodes
          ? ideal
          : scheduler_->schedule_constrained(jobs_[j].app, Watts(slice),
                                             nodes_used);
  const sim::Measurement m =
      executor_->run_exact(jobs_[j].app, constrained.cluster);
  CLIP_ENSURE(m.avg_power.value() <= slice * 1.01 + 1.0,
              "job exceeded its power slice");

  Running r;
  r.job_index = j;
  r.start_s = now_;
  const double duration =
      m.time.value() + constrained.profiling_cost.value();
  r.end_s = now_ + duration;
  r.node_ids.reserve(static_cast<std::size_t>(nodes_used));
  for (int n = 0; n < total_nodes_ &&
                  static_cast<int>(r.node_ids.size()) < nodes_used;
       ++n)
    if (node_alive_[static_cast<std::size_t>(n)] &&
        !node_busy_[static_cast<std::size_t>(n)])
      r.node_ids.push_back(n);
  // Reserve the job's full slice, not its measured draw: the RAPL caps
  // guarantee the slice is never exceeded, and only reserving the caps
  // keeps the cluster-wide bound airtight under transients.
  r.power_w = slice;
  r.true_power_w = m.avg_power.value();
  r.energy_j = m.energy.value();
  r.config = constrained.cluster;
  r.prof_s = constrained.profiling_cost.value();
  r.full_energy_j = m.energy.value();
  r.frac_done = 0.0;
  r.change_s = now_;
  r.ff_remaining = duration;
  if (injector_ != nullptr) {
    // Degrades stretch the run; a held node's crash aborts it.
    const fault::RunResolution res =
        injector_->resolve(now_, duration, r.node_ids);
    r.end_s = res.end_s;
    r.crashed = res.crashed;
    r.crashed_node = res.crashed_node;
  }
  for (int n : r.node_ids) node_busy_[static_cast<std::size_t>(n)] = true;

  auto& out = report_.jobs[j];
  out.app = jobs_[j].app.name;
  out.parameters = jobs_[j].app.parameters;
  out.submit_s = 0.0;
  out.start_s = now_;
  out.end_s = r.end_s;
  out.nodes = nodes_used;
  out.budget_w = slice;
  out.power_w = m.avg_power.value();
  out.attempts = ++attempts_[j];
  out.completed = !r.crashed;
  out.crashed_node = -1;
  if (timeline_ != nullptr) {
    timeline_->event("job", now_, "start " + out.app + " nodes=" +
                                      std::to_string(nodes_used) +
                                      trace_suffix(j));
    const double per_node_cap = slice / nodes_used;
    const double per_node_power = m.avg_power.value() / nodes_used;
    for (int n : r.node_ids) {
      const std::string prefix = "node" + std::to_string(n);
      timeline_->record(prefix + ".cap_w", now_, per_node_cap);
      timeline_->record(prefix + ".power_w", now_, per_node_power);
    }
  }
  // Optimistic accounting at start, exactly as the fault-free queue always
  // did (same FP operations in the same order, so an empty plan reproduces
  // the report bit-for-bit); a crash abort adjusts the energy term. For a
  // crashed run r.end_s is already the abort instant, so the node-seconds
  // term needs no adjustment, and a degraded run's stretch is billed here.
  report_.total_energy_j += m.energy.value();
  report_.node_seconds_used += nodes_used * (r.end_s - now_);
  running_.push_back(std::move(r));
  state_[j] = State::kRunning;
  obs::count(action_obs(), "queue.jobs_started");
  obs::observe(action_obs(), "queue.job_wait_s", wait_s_spec(), out.wait_s());
  if (journal_ != nullptr) {
    const Running& rr = running_.back();
    jlog("launch", "job=" + std::to_string(j) + " attempt=" +
                       std::to_string(attempts_[j]) + " nodes=" +
                       join_ints(rr.node_ids, '/') + " slice=" +
                       fx(rr.power_w) + " end=" + fx(rr.end_s) +
                       " crashed=" + (rr.crashed ? "1" : "0") +
                       trace_suffix(j));
  }
  return true;
}

void QueueEventLoop::start_eligible() {
  // BUDGET_BROWNOUT pauses admission: the launch pass is skipped until the
  // cut window ends (the gauges below keep tracking the paused queue).
  if (!admission_paused_) {
    // Host-time cost of one admission pass, recorded only while the live
    // telemetry plane is up: queue metrics stay a deterministic function
    // of the workload otherwise (same-seed runs fingerprint identically).
    // Metrics-only — never the timeline, whose contents must stay a
    // function of simulated time. Feeds the p99 SLO rule in obs/alerts.hpp.
    obs::ScopedTimer timer(telemetry_ != nullptr ? action_obs() : nullptr,
                           "queue.decision_latency_us");
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      if (state_[j] != State::kPending) continue;
      if (eligible_s_[j] > now_) continue;  // still backing off after a crash
      const bool ok = try_start(j);
      if (!ok && !options_.backfill) break;  // strict FCFS: head blocks
    }
  }
  std::size_t waiting = 0;
  for (std::size_t j = 0; j < jobs_.size(); ++j)
    if (state_[j] == State::kPending) ++waiting;
  obs::gauge_set(action_obs(), "queue.depth", static_cast<double>(waiting));
  obs::gauge_set(action_obs(), "queue.running",
                 static_cast<double>(running_.size()));
  if (timeline_ != nullptr) {
    timeline_->record("queue.depth", now_, static_cast<double>(waiting));
    timeline_->record("queue.running", now_,
                      static_cast<double>(running_.size()));
    timeline_->record("budget.free_w", now_, free_power());
  }
  // Steady-state publishing is throttled: /status is a monitoring view, not
  // a ledger, so a few-steps-stale snapshot is fine and the O(jobs) state
  // scan plus the server mutex stay off the per-decision path
  // (bench/obs_overhead prices exactly this duty cycle). Run start, mode
  // transitions and finalize() still publish unconditionally.
  if (telemetry_ != nullptr && (publish_tick_++ & 0xF) == 0)
    publish_status(true);
}

// Announce fault events whose time has arrived: counters/spans once per
// event, crashes also retire the node from the pool.
void QueueEventLoop::apply_fault_events() {
  bool fired = false;
  for (std::size_t i = 0; i < crash_seen_.size(); ++i) {
    const auto& c = plan_->crashes[i];
    if (crash_seen_[i] || c.at_s > now_) continue;
    crash_seen_[i] = true;
    fired = true;
    obs::ScopedSpan span(action_obs(), "fault.inject", "fault");
    span.arg("kind", "crash");
    span.arg("node", c.node);
    obs::count(action_obs(), "fault.injected");
    obs::count(action_obs(), "fault.crashes");
    if (timeline_ != nullptr)
      timeline_->event("fault", now_,
                       "crash node=" + std::to_string(c.node));
    if (node_alive_[static_cast<std::size_t>(c.node)]) {
      node_alive_[static_cast<std::size_t>(c.node)] = false;
      report_.crashed_nodes.push_back(c.node);
    }
  }
  for (std::size_t i = 0; i < degrade_seen_.size(); ++i) {
    const auto& d = plan_->degrades[i];
    if (degrade_seen_[i] || d.at_s > now_) continue;
    degrade_seen_[i] = true;
    fired = true;
    obs::ScopedSpan span(action_obs(), "fault.inject", "fault");
    span.arg("kind", "degrade");
    span.arg("node", d.node);
    obs::count(action_obs(), "fault.injected");
    obs::count(action_obs(), "fault.degrades");
    if (timeline_ != nullptr)
      timeline_->event("fault", now_,
                       "degrade node=" + std::to_string(d.node));
  }
  for (std::size_t i = 0; i < meter_seen_.size(); ++i) {
    const auto& f = plan_->meter_faults[i];
    if (meter_seen_[i] || f.at_s > now_) continue;
    meter_seen_[i] = true;
    fired = true;
    obs::ScopedSpan span(action_obs(), "fault.inject", "fault");
    span.arg("kind", std::string("meter-") + to_string(f.kind));
    span.arg("node", f.node);
    obs::count(action_obs(), "fault.injected");
    obs::count(action_obs(), "fault.meter_faults");
    if (timeline_ != nullptr)
      timeline_->event("fault", now_,
                       std::string("meter-") + to_string(f.kind) +
                           " node=" + std::to_string(f.node));
  }
  for (std::size_t i = 0; i < capviol_seen_.size(); ++i) {
    const auto& v = plan_->cap_violations[i];
    if (capviol_seen_[i] || v.at_s > now_) continue;
    capviol_seen_[i] = true;
    fired = true;
    obs::ScopedSpan span(action_obs(), "fault.inject", "fault");
    span.arg("kind", "cap-violation");
    span.arg("node", v.node);
    obs::count(action_obs(), "fault.injected");
    obs::count(action_obs(), "fault.cap_violations");
    if (timeline_ != nullptr)
      timeline_->event("fault", now_,
                       "cap-violation node=" + std::to_string(v.node));
  }
  for (std::size_t i = 0; i < blackout_seen_.size(); ++i) {
    const auto& b = plan_->meter_blackouts[i];
    if (blackout_seen_[i] || b.at_s > now_) continue;
    blackout_seen_[i] = true;
    fired = true;
    obs::ScopedSpan span(action_obs(), "fault.inject", "fault");
    span.arg("kind", "meter-blackout");
    obs::count(action_obs(), "fault.injected");
    obs::count(action_obs(), "fault.blackouts");
    if (timeline_ != nullptr)
      timeline_->event("fault", now_,
                       "meter-blackout for " +
                           format_double(b.duration_s, 1) + "s");
  }
  for (std::size_t i = 0; i < cut_seen_.size(); ++i) {
    const auto& c = plan_->budget_cuts[i];
    if (cut_seen_[i] || c.at_s > now_) continue;
    cut_seen_[i] = true;
    fired = true;
    obs::ScopedSpan span(action_obs(), "fault.inject", "fault");
    span.arg("kind", "budget-cut");
    obs::count(action_obs(), "fault.injected");
    obs::count(action_obs(), "fault.budget_cuts");
    if (timeline_ != nullptr)
      timeline_->event("fault", now_,
                       "budget-cut to " + format_double(c.factor, 2) +
                           "x for " + format_double(c.duration_s, 1) + "s");
  }
  if (timeline_ != nullptr && fired)
    timeline_->record("fault.active", now_,
                      static_cast<double>(faults_active_at(now_)));
}

// Claw back a violated cap on `node` (re-coordination took effect).
void QueueEventLoop::claw_back(int node) {
  const int truncated = injector_->truncate_cap_violations(node, now_);
  if (truncated == 0) return;  // window already over
  report_.caps_reprogrammed += truncated;
  obs::ScopedSpan span(action_obs(), "budget.reprogram", "fault");
  span.arg("node", node);
  obs::count(action_obs(), "budget.caps_reprogrammed",
             static_cast<std::uint64_t>(truncated));
  if (timeline_ != nullptr) {
    timeline_->event("fault", now_, "claw-back node=" + std::to_string(node));
    timeline_->record("fault.active", now_,
                      static_cast<double>(faults_active_at(now_)));
  }
  if (journal_ != nullptr)
    jlog("guard-claw", "node=" + std::to_string(node) + " windows=" +
                           std::to_string(truncated) + " t=" + fx(now_));
}

// The guard's sampling pass: read every active node's meter (corrupted by
// the injector, filtered for plausibility), detect cluster overshoot, and
// schedule claw-backs with the actuation latency. METER_BLACKOUT freezes
// the pass entirely: there is nothing trustworthy to read.
void QueueEventLoop::guard_sample() {
  if (meters_dark_) return;
  if (!guard_.options().enabled || running_.empty()) return;
  double observed = 0.0;
  for (const auto& r : running_) {
    const double per_node_truth =
        r.true_power_w / static_cast<double>(r.node_ids.size());
    const double per_node_expected =
        r.power_w / static_cast<double>(r.node_ids.size());
    for (int n : r.node_ids) {
      const double truth =
          per_node_truth + injector_->cap_excess_w({n}, now_);
      if (timeline_ != nullptr)
        timeline_->record("node" + std::to_string(n) + ".power_w", now_,
                          truth);
      observed += guard_.filter_reading(
          injector_->observed_node_power(n, now_, truth),
          per_node_expected);
    }
  }
  if (!guard_.overshoot(observed)) return;
  obs::count(action_obs(), "budget.overshoot_events");
  for (int n : injector_->violating_nodes(active_node_ids(), now_)) {
    if (enforcement_pending_[static_cast<std::size_t>(n)]) continue;
    if (guard_.options().reaction_s <= 0.0) {
      claw_back(n);
    } else {
      enforcement_pending_[static_cast<std::size_t>(n)] = true;
      enforcements_.push_back({now_ + guard_.options().reaction_s, n});
      if (journal_ != nullptr)
        jlog("enforce-scheduled", "node=" + std::to_string(n) + " at=" +
                                      fx(enforcements_.back().at_s));
    }
  }
}

// Work fraction job `r` has completed by `t` (fault-free-equivalent work
// over total), chained through the re-base points.
double QueueEventLoop::frac_at(const Running& r, double t) const {
  if (r.ff_remaining <= 0.0) return 1.0;
  const double done = injector_ != nullptr
                          ? injector_->work_done_s(r.change_s, t, r.node_ids)
                          : t - r.change_s;
  const double seg = std::clamp(done / r.ff_remaining, 0.0, 1.0);
  return r.frac_done + seg * (1.0 - r.frac_done);
}

// Where job `r` would finish if its remaining work ran at measurement
// `m1`'s pace (resolved against faults from `now` onward).
double QueueEventLoop::projected_end(const Running& r,
                                     const sim::Measurement& m1) const {
  const double frac = frac_at(r, now_);
  const double ff_rem =
      std::max((1.0 - frac) * (m1.time.value() + r.prof_s), 0.0);
  if (injector_ == nullptr) return now_ + ff_rem;
  return injector_->resolve(now_, ff_rem, r.node_ids).end_s;
}

// Re-base job `r` onto a new configuration/slice at `now`: convert its
// elapsed time into work progress, re-resolve the remainder against the
// fault plan (which may newly hit — or dodge — a crash), and adjust the
// optimistic energy / node-seconds bills by the delta on the unfinished
// fraction.
void QueueEventLoop::rebase_running(Running& r, const sim::ClusterConfig& cfg,
                                    const sim::Measurement& m1,
                                    double new_slice) {
  const double frac = frac_at(r, now_);
  const double ff_rem =
      std::max((1.0 - frac) * (m1.time.value() + r.prof_s), 0.0);
  double new_end = now_ + ff_rem;
  bool crashed = false;
  int crashed_node = -1;
  if (injector_ != nullptr) {
    const fault::RunResolution res =
        injector_->resolve(now_, ff_rem, r.node_ids);
    new_end = res.end_s;
    crashed = res.crashed;
    crashed_node = res.crashed_node;
  }
  const double energy_delta =
      (1.0 - frac) * (m1.energy.value() - r.full_energy_j);
  report_.total_energy_j += energy_delta;
  r.energy_j += energy_delta;
  r.full_energy_j = m1.energy.value();
  report_.node_seconds_used +=
      static_cast<double>(r.node_ids.size()) * (new_end - r.end_s);
  r.config = cfg;
  r.power_w = new_slice;
  r.true_power_w = m1.avg_power.value();
  r.end_s = new_end;
  r.crashed = crashed;
  r.crashed_node = crashed_node;
  r.frac_done = frac;
  r.change_s = now_;
  r.ff_remaining = ff_rem;
  auto& out = report_.jobs[r.job_index];
  out.end_s = new_end;
  out.budget_w = new_slice;
  out.power_w = r.true_power_w;
  out.completed = !crashed;
  if (timeline_ != nullptr) {
    const double n_nodes = static_cast<double>(r.node_ids.size());
    for (int n : r.node_ids) {
      const std::string prefix = "node" + std::to_string(n);
      timeline_->record(prefix + ".cap_w", now_, new_slice / n_nodes);
      timeline_->record(prefix + ".power_w", now_, r.true_power_w / n_nodes);
    }
  }
}

// Actuate one claw-back whose reaction latency elapsed. If the placement
// it targeted is gone (completed, or crash-aborted — the race the attempt
// tag catches), its watts are already back in the free pool and the claw
// dissolves without effect.
void QueueEventLoop::apply_claw(const PendingClaw& c) {
  Running* r = nullptr;
  for (auto& cand : running_)
    if (cand.job_index == c.job) r = &cand;
  if (r == nullptr || attempts_[c.job] != c.attempt) {
    if (journal_ != nullptr)
      jlog("claw-dissolve", "job=" + std::to_string(c.job) + " reason=gone");
    return;
  }
  const int n_nodes = static_cast<int>(r->node_ids.size());
  const double floor_w =
      std::max(options_.min_node_power_w * n_nodes,
               r->true_power_w + options_.redist.headroom_frac * r->power_w);
  const double claw = std::min(c.watts, r->power_w - floor_w);
  if (claw <= 0.0) {
    // A re-grant since the decision ate the slack.
    if (journal_ != nullptr)
      jlog("claw-dissolve", "job=" + std::to_string(c.job) + " reason=eaten");
    return;
  }
  r->power_w -= claw;
  report_.jobs[r->job_index].budget_w = r->power_w;
  ++report_.redist_claw_backs;
  report_.redist_reclaimed_w += claw;
  obs::count(action_obs(), "redist.claw_backs");
  if (timeline_ != nullptr) {
    timeline_->event("redist", now_,
                     "claw " + report_.jobs[r->job_index].app +
                         " w=" + format_double(claw, 1));
    const double per_node_cap = r->power_w / n_nodes;
    for (int n : r->node_ids)
      timeline_->record("node" + std::to_string(n) + ".cap_w", now_,
                        per_node_cap);
  }
  if (journal_ != nullptr)
    jlog("claw-actuate", "job=" + std::to_string(c.job) + " w=" + fx(claw));
}

// The redistribution tick: sample, size claw-backs, and hill-climb
// memory-phase jobs one PKG→DRAM step.
void QueueEventLoop::redist_tick() {
  obs::count(action_obs(), "redist.ticks");
  for (const auto& r : running_) {
    const double n_nodes = static_cast<double>(r.node_ids.size());
    const double per_node_truth = r.true_power_w / n_nodes;
    const double per_node_expected = r.power_w / n_nodes;
    for (int n : r.node_ids) {
      double truth = per_node_truth;
      double observed = truth;
      if (injector_ != nullptr) {
        truth += injector_->cap_excess_w({n}, now_);
        observed = injector_->observed_node_power(n, now_, truth);
      }
      detector_.observe(n, now_,
                        guard_.filter_reading(observed, per_node_expected));
    }
  }
  double slack_total = 0.0;
  for (const auto& r : running_) {
    if (r.crashed) continue;  // its watts come back at the abort instant
    bool claw_pending = false;
    for (const auto& c : pending_claws_)
      claw_pending = claw_pending || c.job == r.job_index;
    if (claw_pending) continue;
    const int n_nodes = static_cast<int>(r.node_ids.size());
    const double cap_per_node = r.power_w / n_nodes;
    double slack = 0.0;
    for (int n : r.node_ids) slack += detector_.node_slack_w(n, cap_per_node);
    slack_total += slack;
    const double floor_w =
        std::max(options_.min_node_power_w * n_nodes,
                 r.true_power_w + options_.redist.headroom_frac * r.power_w);
    const double claw = redistributor_.claw_w(r.power_w, slack, floor_w);
    if (claw <= 0.0) continue;
    pending_claws_.push_back({now_ + options_.redist.reaction_s, r.job_index,
                              attempts_[r.job_index], claw});
    if (timeline_ != nullptr)
      timeline_->event("redist", now_,
                       "claw-scheduled " + report_.jobs[r.job_index].app +
                           " w=" + format_double(claw, 1));
    if (journal_ != nullptr)
      jlog("claw-scheduled", "job=" + std::to_string(r.job_index) + " at=" +
                                 fx(pending_claws_.back().at_s) +
                                 " w=" + fx(claw));
  }
  if (timeline_ != nullptr)
    timeline_->record("redist.slack_w", now_, slack_total);
  if (journal_ != nullptr)
    jlog("tick", "t=" + fx(now_) + " slack=" + fx(slack_total));
  if (!options_.redist.subsystem_split) return;
  for (auto& r : running_) {
    if (r.crashed) continue;
    const PhaseSignal sig = SlackDetector::phase_at(
        jobs_[r.job_index].app, r.start_s, r.end_s, now_);
    if (!sig.memory_bound) continue;
    const sim::ClusterConfig shifted = sim::shift_pkg_to_dram(
        r.config, Watts(options_.redist.shift_step_w), Watts(1.0));
    if (shifted.node.cpu_cap.value() == r.config.node.cpu_cap.value() &&
        shifted.node.mem_level == r.config.node.mem_level)
      continue;  // already fully shifted
    const sim::Measurement m1 =
        executor_->run_exact(jobs_[r.job_index].app, shifted);
    if (m1.avg_power.value() > r.power_w * 1.01 + 1.0)
      continue;  // must keep fitting the reserved slice
    const double gain = r.end_s - projected_end(r, m1);
    if (gain < options_.redist.min_gain_s) continue;
    rebase_running(r, shifted, m1, r.power_w);
    ++report_.redist_subsystem_shifts;
    obs::count(action_obs(), "redist.subsystem_shifts");
    if (timeline_ != nullptr)
      timeline_->event("redist", now_,
                       "shift " + report_.jobs[r.job_index].app +
                           " pkg->dram w=" +
                           format_double(options_.redist.shift_step_w, 1));
    if (journal_ != nullptr)
      jlog("shift", "job=" + std::to_string(r.job_index) + " t=" + fx(now_));
  }
}

// Re-grant the free pool to the running job whose completion improves the
// most. Queued jobs own the free watts first: while anyone is pending
// (even in crash backoff) the pool stays untouched. METER_BLACKOUT freezes
// re-grants: a grant is justified by measured slack, and there are no
// measurements.
void QueueEventLoop::try_regrant() {
  if (meters_dark_) return;
  for (std::size_t j = 0; j < jobs_.size(); ++j)
    if (state_[j] == State::kPending) return;
  const double free_w = free_power();
  if (free_w < options_.redist.min_grant_w || running_.empty()) return;
  struct Eval {
    sim::ClusterConfig cfg;
    sim::Measurement m;
    double slice;
  };
  std::vector<RegrantCandidate> candidates;
  std::vector<Eval> evals;
  for (std::size_t i = 0; i < running_.size(); ++i) {
    const Running& r = running_[i];
    if (r.crashed) continue;  // boosting a doomed placement buys nothing
    const double slice = r.power_w + free_w;
    const core::ScheduleDecision boosted = scheduler_->schedule_constrained(
        jobs_[r.job_index].app, Watts(slice),
        static_cast<int>(r.node_ids.size()));
    const sim::Measurement m1 =
        executor_->run_exact(jobs_[r.job_index].app, boosted.cluster);
    if (m1.avg_power.value() > slice * 1.01 + 1.0) continue;
    candidates.push_back({i, free_w, r.end_s - projected_end(r, m1)});
    evals.push_back({boosted.cluster, m1, slice});
  }
  const RegrantCandidate* best = redistributor_.pick(candidates);
  if (best == nullptr) return;
  Running& r = running_[best->job];
  // The guard admits the grant against the larger of the reservations and
  // the true draw: during an active cap violation the cluster is already
  // over budget, and re-granting then would widen the violation.
  double reserved = 0.0;
  for (const auto& other : running_) reserved += other.power_w;
  if (injector_ != nullptr)
    reserved = std::max(reserved, true_cluster_power(now_));
  if (!guard_.admit_regrant(reserved, best->grant_w)) {
    obs::count(action_obs(), "redist.regrants_rejected");
    if (timeline_ != nullptr)
      timeline_->event("redist", now_,
                       "regrant-rejected " + report_.jobs[r.job_index].app +
                           " w=" + format_double(best->grant_w, 1));
    if (journal_ != nullptr)
      jlog("grant-reject", "job=" + std::to_string(r.job_index) + " w=" +
                               fx(best->grant_w));
    return;
  }
  const Eval& e = evals[static_cast<std::size_t>(best - candidates.data())];
  rebase_running(r, e.cfg, e.m, e.slice);
  ++report_.redist_regrants;
  report_.redist_granted_w += best->grant_w;
  obs::count(action_obs(), "redist.regrants");
  if (timeline_ != nullptr)
    timeline_->event("redist", now_,
                     "regrant " + report_.jobs[r.job_index].app +
                         " w=" + format_double(best->grant_w, 1));
  if (journal_ != nullptr)
    jlog("grant", "job=" + std::to_string(r.job_index) + " w=" +
                      fx(best->grant_w));
}

// Process the single earliest finished run due at `now` (one per pass, so
// a simultaneous completion sees the freed resources of the previous one —
// exactly how the fault-free queue always behaved).
bool QueueEventLoop::finish_one_due() {
  auto next = running_.end();
  for (auto it = running_.begin(); it != running_.end(); ++it)
    if (it->end_s <= now_ &&
        (next == running_.end() || it->end_s < next->end_s))
      next = it;
  if (next == running_.end()) return false;
  const Running r = *next;
  running_.erase(next);
  for (int n : r.node_ids) node_busy_[static_cast<std::size_t>(n)] = false;
  const std::size_t j = r.job_index;
  if (timeline_ != nullptr)
    for (int n : r.node_ids) {
      const std::string prefix = "node" + std::to_string(n);
      timeline_->record(prefix + ".power_w", now_, 0.0);
      timeline_->record(prefix + ".cap_w", now_, 0.0);
    }
  if (!r.crashed) {
    state_[j] = State::kDone;
    if (timeline_ != nullptr)
      timeline_->event("job", now_,
                       "finish " + report_.jobs[j].app + trace_suffix(j));
    if (journal_ != nullptr)
      jlog("complete", "job=" + std::to_string(j) + " t=" + fx(now_) +
                           trace_suffix(j));
    return true;
  }
  // Crash abort: replace the optimistic energy bill with the watts the
  // partial execution truly drew (nodes and watts were freed above), then
  // retry or fail.
  const double elapsed = r.end_s - r.start_s;
  report_.total_energy_j += r.true_power_w * elapsed - r.energy_j;
  auto& out = report_.jobs[j];
  out.crashed_node = r.crashed_node;
  out.completed = false;
  if (timeline_ != nullptr)
    timeline_->event("job", now_,
                     "crash " + out.app +
                         " node=" + std::to_string(r.crashed_node) +
                         trace_suffix(j));
  if (attempts_[j] >= options_.retry.max_attempts) {
    state_[j] = State::kFailed;
    ++report_.jobs_failed;
    obs::count(action_obs(), "queue.jobs_failed");
    if (timeline_ != nullptr)
      timeline_->event("job", now_, "fail " + out.app + trace_suffix(j));
    if (journal_ != nullptr)
      jlog("fail", "job=" + std::to_string(j) + " t=" + fx(now_) +
                       trace_suffix(j));
    return true;
  }
  state_[j] = State::kPending;
  eligible_s_[j] = now_ + options_.retry.backoff_s(attempts_[j]);
  retry_wakeups_.push_back(eligible_s_[j]);
  ++report_.retries;
  obs::ScopedSpan span(action_obs(), "queue.requeue", "runtime");
  span.arg("app", out.app);
  span.arg("crashed_node", r.crashed_node);
  if (span.active() && j < traces_.size()) {
    span.arg("trace_id", traces_[j].hex());
    span.arg("span_id", traces_[j].span_hex("queue"));
  }
  obs::count(action_obs(), "queue.retries");
  if (timeline_ != nullptr)
    timeline_->event("job", now_, "requeue " + out.app + trace_suffix(j));
  if (journal_ != nullptr)
    jlog("crash-requeue", "job=" + std::to_string(j) + " node=" +
                              std::to_string(r.crashed_node) +
                              " eligible=" + fx(eligible_s_[j]) +
                              trace_suffix(j));
  return true;
}

void QueueEventLoop::prepare_run() {
  CLIP_REQUIRE(!started_,
               "QueueEventLoop is single-shot: construct a fresh loop per run");
  started_ = true;
  plan_ = injector_ != nullptr ? &injector_->plan() : nullptr;
  crash_seen_.assign(plan_ != nullptr ? plan_->crashes.size() : 0, false);
  degrade_seen_.assign(plan_ != nullptr ? plan_->degrades.size() : 0, false);
  meter_seen_.assign(plan_ != nullptr ? plan_->meter_faults.size() : 0, false);
  capviol_seen_.assign(plan_ != nullptr ? plan_->cap_violations.size() : 0,
                       false);
  blackout_seen_.assign(plan_ != nullptr ? plan_->meter_blackouts.size() : 0,
                        false);
  cut_seen_.assign(plan_ != nullptr ? plan_->budget_cuts.size() : 0, false);
  wakeups_ =
      injector_ != nullptr ? injector_->wakeups() : std::vector<double>{};
  wakeup_idx_ = 0;
  mode_faults_on_ = plan_ != nullptr && (!plan_->meter_blackouts.empty() ||
                                         !plan_->budget_cuts.empty());
  if (options_.trace.enabled && traces_.empty()) {
    // One draw per job in submission order: ids are a pure function of
    // (seed, job index), so a recovery constructed with the same options
    // re-mints exactly the ids the dying run journaled.
    Rng trace_rng(options_.trace.seed);
    traces_.reserve(jobs_.size());
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      traces_.push_back(obs::TraceContext::make(trace_rng));
      report_.jobs[j].trace_id = traces_[j].hex();
    }
  }
  if (options_.telemetry_port >= 0 && telemetry_ == nullptr) {
    obs::TelemetryServerOptions server_options;
    server_options.port = options_.telemetry_port;
    server_options.metrics = obs_ != nullptr ? &obs_->metrics() : nullptr;
    server_options.timeline = timeline_;
    telemetry_ = std::make_unique<obs::TelemetryServer>(server_options);
    publish_status(true);
  }
}

QueueReport QueueEventLoop::run() {
  prepare_run();
  return run_fresh();
}

QueueReport QueueEventLoop::run_fresh() {
  if (journal_ != nullptr) {
    // begin + admit ARE the genesis state: together they determine the
    // pre-init loop exactly, so no snapshot is written here. A journal cut
    // before the first periodic snapshot recovers by restarting (still
    // byte-identical — the loop is deterministic).
    jlog("begin", begin_payload());
    jlog("admit", admits_payload());
  }
  init_pass();
  main_loop();
  finalize();
  return report_;
}

QueueReport QueueEventLoop::recover(Journal& journal) {
  journal_ = &journal;
  prepare_run();
  obs::count(obs_, "journal.recoveries");
  // The journal prefix must describe this very run — a recovery against the
  // wrong jobs, options or attachments must fail loudly, not diverge. The
  // check is prefix-tolerant: a journal torn before these records exist is a
  // legitimate early death, not a mismatch.
  const auto& records = journal.records();
  if (!records.empty())
    CLIP_REQUIRE(records[0].kind == "begin" &&
                     records[0].payload == begin_payload(),
                 "journal was written by a different run configuration");
  if (records.size() > 1)
    CLIP_REQUIRE(records[1].kind == "admit" &&
                     records[1].payload == admits_payload(),
                 "journal admits do not match this job stream");
  const std::optional<std::size_t> snap = journal.last_snapshot();
  if (!snap.has_value()) {
    // The coordinator died before the first periodic snapshot: nothing to
    // restore, the run starts over and re-journals from scratch.
    journal.clear();
    return run_fresh();
  }
  restore_state(records[*snap].payload);
  replay_cursor_ = *snap + 1;
  replay_limit_ = records.size();
  replaying_ = replay_cursor_ < replay_limit_;
  records_since_snapshot_ = 0;
  rederive_running();
  if (!init_done_) init_pass();
  main_loop();
  finalize();
  return report_;
}

void QueueEventLoop::init_pass() {
  if (injector_ != nullptr) {
    while (wakeup_idx_ < wakeups_.size() && wakeups_[wakeup_idx_] <= now_)
      ++wakeup_idx_;
    apply_fault_events();  // t = 0 events precede the first placement
    if (mode_faults_on_) update_mode();
  }
  start_eligible();
  if (injector_ != nullptr) guard_sample();
  init_done_ = true;
}

void QueueEventLoop::main_loop() {
  for (;;) {
    maybe_snapshot();
    // 1. Due injector events: cap claw-backs whose latency elapsed, then
    //    newly arrived plan events (crashes must retire nodes before any
    //    start at this instant), then expired retry backoffs.
    bool acted = false;
    if (injector_ != nullptr) {
      for (auto it = enforcements_.begin(); it != enforcements_.end();) {
        if (it->at_s <= now_) {
          enforcement_pending_[static_cast<std::size_t>(it->node)] = false;
          claw_back(it->node);
          it = enforcements_.erase(it);
          acted = true;
        } else {
          ++it;
        }
      }
      while (wakeup_idx_ < wakeups_.size() && wakeups_[wakeup_idx_] <= now_) {
        ++wakeup_idx_;
        acted = true;
      }
      for (auto it = retry_wakeups_.begin(); it != retry_wakeups_.end();) {
        if (*it <= now_) {
          it = retry_wakeups_.erase(it);
          acted = true;
        } else {
          ++it;
        }
      }
      if (acted) {
        apply_fault_events();
        if (mode_faults_on_) update_mode();
      }
    }
    // 1b. Due redistribution work: claw-backs whose reaction latency
    //     elapsed, then the periodic slack-sampling tick (frozen while the
    //     meters are dark — stale samples must not drive claw-backs).
    if (redist_on_) {
      for (auto it = pending_claws_.begin(); it != pending_claws_.end();) {
        if (it->at_s <= now_) {
          apply_claw(*it);
          it = pending_claws_.erase(it);
          acted = true;
        } else {
          ++it;
        }
      }
      if (!running_.empty() && next_tick_s_ <= now_ && !meters_dark_) {
        redist_tick();
        acted = true;
      }
      while (next_tick_s_ <= now_) next_tick_s_ += options_.redist.period_s;
    }

    // 2. Due completions, one per pass with a start pass after each.
    if (finish_one_due()) {
      start_eligible();
      if (injector_ != nullptr) guard_sample();
      if (redist_on_) try_regrant();
      continue;
    }
    // 3. An event without a completion still frees or consumes capacity
    //    (crashed node gone, cap clawed back, retry eligible): start pass.
    if (acted) {
      start_eligible();
      if (injector_ != nullptr) guard_sample();
      if (redist_on_) try_regrant();
      continue;
    }

    // 4. Nothing due at `now`: advance to the next instant anything happens.
    bool any_pending = false;
    double next = kInf;
    for (const auto& r : running_) next = std::min(next, r.end_s);
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      if (state_[j] != State::kPending) continue;
      any_pending = true;
      if (eligible_s_[j] > now_) next = std::min(next, eligible_s_[j]);
    }
    if (injector_ != nullptr && (!running_.empty() || any_pending)) {
      if (wakeup_idx_ < wakeups_.size())
        next = std::min(next, wakeups_[wakeup_idx_]);
      for (const auto& e : enforcements_) next = std::min(next, e.at_s);
    }
    if (redist_on_) {
      if (!running_.empty()) next = std::min(next, next_tick_s_);
      for (const auto& c : pending_claws_) next = std::min(next, c.at_s);
    }
    if (next == kInf) break;
    if (injector_ != nullptr)
      guard_.account(next - now_, true_cluster_power(now_));
    now_ = next;
  }
}

void QueueEventLoop::finalize() {
  // Jobs still pending when nothing can ever happen again (every node dead,
  // or the budget unreachable) are failures, not hangs. Without an injector
  // this is unreachable: a lone job always fits an idle cluster.
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    if (state_[j] != State::kPending) continue;
    CLIP_ENSURE(injector_ != nullptr,
                "job never started: " + jobs_[j].app.name);
    auto& out = report_.jobs[j];
    out.app = jobs_[j].app.name;
    out.parameters = jobs_[j].app.parameters;
    out.attempts = attempts_[j];
    out.completed = false;
    state_[j] = State::kFailed;
    ++report_.jobs_failed;
    obs::count(action_obs(), "queue.jobs_failed");
    if (journal_ != nullptr)
      jlog("fail", "job=" + std::to_string(j) + " reason=stranded");
  }

  report_.makespan_s = 0.0;
  double turnaround = 0.0;
  for (const auto& r : report_.jobs) {
    report_.makespan_s = std::max(report_.makespan_s, r.end_s);
    turnaround += r.turnaround_s();
  }
  report_.mean_turnaround_s = turnaround / static_cast<double>(jobs_.size());
  report_.node_seconds_available = report_.makespan_s * total_nodes_;
  report_.violation_s = guard_.violation_s();
  report_.violation_ws = guard_.violation_ws();
  report_.meter_reads_rejected = guard_.rejected_reads();
  if (injector_ != nullptr) {
    obs::gauge_set(obs_, "budget.violation_s", report_.violation_s);
    obs::gauge_set(obs_, "budget.violation_ws", report_.violation_ws);
    if (report_.meter_reads_rejected > 0)
      obs::count(action_obs(), "fault.meter_reads_rejected",
                 report_.meter_reads_rejected);
  }
  report_.redist_regrants_rejected = guard_.regrants_rejected();
  if (redist_on_) {
    obs::gauge_set(obs_, "redist.reclaimed_w", report_.redist_reclaimed_w);
    obs::gauge_set(obs_, "redist.granted_w", report_.redist_granted_w);
  }
  if (timeline_ != nullptr)
    timeline_->record("budget.violation_s", report_.makespan_s,
                      report_.violation_s);
  if (journal_ != nullptr)
    jlog("end", "makespan=" + fx(report_.makespan_s) +
                    " violation_s=" + fx(report_.violation_s));
  publish_status(false);
}

// --- degraded-mode state machine (docs/robustness.md) ----------------------
// Only ever called when the plan contains blackout or budget-cut windows
// (mode_faults_on_), so every other run never touches this path.

void QueueEventLoop::update_mode() {
  const double factor = injector_->budget_cut_factor(now_);
  const bool dark = injector_->meters_blacked_out(now_);
  if (factor != applied_factor_) {
    effective_budget_ =
        factor == 1.0 ? total_budget_ : total_budget_ * factor;
    guard_.set_budget(Watts(effective_budget_));
    if (factor < applied_factor_) brownout_clawback();
    applied_factor_ = factor;
  }
  meters_dark_ = dark;
  admission_paused_ = factor < 1.0;
  const DegradedMode next_mode =
      factor < 1.0
          ? DegradedMode::kBudgetBrownout
          : (dark ? DegradedMode::kMeterBlackout : DegradedMode::kNormal);
  if (next_mode == mode_) return;
  mode_ = next_mode;
  obs::count(action_obs(), "mode.transitions");
  obs::gauge_set(action_obs(), "mode.current", static_cast<double>(mode_));
  if (timeline_ != nullptr) {
    timeline_->event("mode", now_, to_string(mode_));
    timeline_->record("mode.current", now_, static_cast<double>(mode_));
  }
  if (journal_ != nullptr)
    jlog("mode", std::string("to=") + to_string(mode_) + " t=" + fx(now_) +
                     " factor=" + fx(factor));
  publish_status(true);
}

// Entering BUDGET_BROWNOUT: the facility cut the budget under the running
// reservations, so claw every live job back proportionally (never below the
// queue's minimum viable reservation — a residual overage then shows up
// honestly as violation-seconds against the cut budget).
void QueueEventLoop::brownout_clawback() {
  double reserved = 0.0;
  for (const auto& r : running_) reserved += r.power_w;
  if (reserved <= effective_budget_) return;
  const double ratio = effective_budget_ / reserved;
  for (auto& r : running_) {
    if (r.crashed) continue;
    const int n_nodes = static_cast<int>(r.node_ids.size());
    const double floor_w = options_.min_node_power_w * n_nodes;
    const double new_slice = std::max(r.power_w * ratio, floor_w);
    if (new_slice >= r.power_w) continue;
    const core::ScheduleDecision cut = scheduler_->schedule_constrained(
        jobs_[r.job_index].app, Watts(new_slice), n_nodes);
    const sim::Measurement m1 =
        executor_->run_exact(jobs_[r.job_index].app, cut.cluster);
    const double clawed = r.power_w - new_slice;
    rebase_running(r, cut.cluster, m1, new_slice);
    obs::count(action_obs(), "mode.brownout_claws");
    if (timeline_ != nullptr)
      timeline_->event("mode", now_,
                       "brownout-claw " + report_.jobs[r.job_index].app +
                           " w=" + format_double(clawed, 1));
    if (journal_ != nullptr)
      jlog("brownout-claw", "job=" + std::to_string(r.job_index) +
                                " w=" + fx(new_slice));
  }
}

// --- journaling -------------------------------------------------------------

void QueueEventLoop::jlog(std::string_view kind, std::string payload) {
  if (journal_ == nullptr) return;
  append_or_verify(kind, std::move(payload));
  ++records_since_snapshot_;
}

void QueueEventLoop::append_or_verify(std::string_view kind,
                                      std::string payload) {
  if (replay_cursor_ < replay_limit_) {
    const JournalRecord& expect = journal_->records()[replay_cursor_];
    if (expect.kind == kind && expect.payload == payload) {
      ++replay_cursor_;
      if (replay_cursor_ >= replay_limit_) replaying_ = false;
      obs::count(obs_, "journal.replayed");
      return;
    }
    // The surviving suffix diverges from re-execution — corruption the CRC
    // could not catch. Salvage: truncate it, log the gap, append fresh.
    journal_->truncate(replay_cursor_);
    replay_limit_ = replay_cursor_;
    replaying_ = false;
    obs::count(obs_, "journal.gaps");
    if (timeline_ != nullptr)
      timeline_->event("journal", now_,
                       "gap: replay diverged at seq " +
                           std::to_string(journal_->size() + 1));
  }
  journal_->append(kind, std::move(payload));
  obs::count(obs_, "journal.records");
}

void QueueEventLoop::emit_snapshot() {
  if (journal_ == nullptr) return;
  append_or_verify("snapshot", serialize_state());
  records_since_snapshot_ = 0;
  obs::count(obs_, "journal.snapshots");
}

void QueueEventLoop::maybe_snapshot() {
  if (journal_ == nullptr) return;
  if (records_since_snapshot_ < journal_->options().snapshot_every) return;
  emit_snapshot();
}

std::string QueueEventLoop::begin_payload() const {
  std::string os = "budget=" + fx(total_budget_) +
                   " nodes=" + std::to_string(total_nodes_) +
                   " jobs=" + std::to_string(jobs_.size());
  os += options_.backfill ? " backfill=1" : " backfill=0";
  os += redist_on_ ? " redist=1" : " redist=0";
  os += injector_ != nullptr ? " injector=1" : " injector=0";
  os += timeline_ != nullptr ? " timeline=1" : " timeline=0";
  // Token appended only when tracing is on: journals written before tracing
  // existed (or with it off) keep their exact bytes, while a traced journal
  // recovered with a different trace configuration fails the begin check
  // loudly instead of diverging record by record.
  if (options_.trace.enabled)
    os += " traceseed=" + std::to_string(options_.trace.seed);
  return os;
}

std::string QueueEventLoop::admits_payload() const {
  // One record for the whole job stream (rather than one per job): admits
  // are static config, and per-record cost is what the recovery bench
  // bounds. Recovery compares this payload verbatim, it never splits it.
  std::string os;
  os.reserve(40 * jobs_.size());
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    if (j > 0) os += ';';
    os += "job=";
    os += std::to_string(j);
    os += " app=";
    os += journal_escape(jobs_[j].app.name);
    os += " nodes=";
    os += std::to_string(jobs_[j].requested_nodes);
  }
  return os;
}

std::string QueueEventLoop::serialize_state() const {
  // Snapshots fire every JournalOptions::snapshot_every records, making this
  // the journal's hot path; build the payload with direct appends into one
  // reserved string (ostringstream's << machinery dominated the journal-on
  // overhead priced by bench/recovery.cpp).
  std::string os;
  os.reserve(768 + 96 * jobs_.size() + 224 * running_.size());
  const auto num = [&os](long long v) { os += std::to_string(v); };
  const auto dbl = [&os](double v) { os += obs::format_exact(v); };
  os += "init=";
  os += init_done_ ? '1' : '0';
  os += " now=";
  dbl(now_);
  os += " mode=";
  num(static_cast<int>(mode_));
  os += " ebud=";
  dbl(effective_budget_);
  os += " factor=";
  dbl(applied_factor_);
  os += " dark=";
  os += meters_dark_ ? '1' : '0';
  os += " pause=";
  os += admission_paused_ ? '1' : '0';
  os += " st=";
  for (const State s : state_)
    os += static_cast<char>('0' + static_cast<int>(s));
  os += " att=";
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    if (j > 0) os += ',';
    num(attempts_[j]);
  }
  os += " el=";
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    if (j > 0) os += ',';
    dbl(eligible_s_[j]);
  }
  os += " alive=";
  os += bits(node_alive_);
  os += " busy=";
  os += bits(node_busy_);
  os += " pend=";
  os += bits(enforcement_pending_);
  os += " seen.crash=";
  os += bits(crash_seen_);
  os += " seen.degrade=";
  os += bits(degrade_seen_);
  os += " seen.meter=";
  os += bits(meter_seen_);
  os += " seen.capviol=";
  os += bits(capviol_seen_);
  os += " seen.blackout=";
  os += bits(blackout_seen_);
  os += " seen.cut=";
  os += bits(cut_seen_);
  os += " widx=";
  num(static_cast<long long>(wakeup_idx_));
  os += " tick=";
  dbl(next_tick_s_);
  os += " enf=";
  for (std::size_t i = 0; i < enforcements_.size(); ++i) {
    if (i > 0) os += ',';
    dbl(enforcements_[i].at_s);
    os += ':';
    num(enforcements_[i].node);
  }
  os += " retry=";
  for (std::size_t i = 0; i < retry_wakeups_.size(); ++i) {
    if (i > 0) os += ',';
    dbl(retry_wakeups_[i]);
  }
  os += " claw=";
  for (std::size_t i = 0; i < pending_claws_.size(); ++i) {
    if (i > 0) os += ',';
    dbl(pending_claws_[i].at_s);
    os += ':';
    num(static_cast<long long>(pending_claws_[i].job));
    os += ':';
    num(pending_claws_[i].attempt);
    os += ':';
    dbl(pending_claws_[i].watts);
  }
  os += " run.n=";
  num(static_cast<long long>(running_.size()));
  for (std::size_t k = 0; k < running_.size(); ++k) {
    const Running& r = running_[k];
    os += " run.";
    num(static_cast<long long>(k));
    os += '=';
    num(static_cast<long long>(r.job_index));
    os += ':';
    dbl(r.start_s);
    os += ':';
    dbl(r.end_s);
    os += ':';
    dbl(r.power_w);
    os += ':';
    dbl(r.true_power_w);
    os += ':';
    dbl(r.energy_j);
    os += ':';
    os += r.crashed ? '1' : '0';
    os += ':';
    num(r.crashed_node);
    os += ':';
    dbl(r.prof_s);
    os += ':';
    dbl(r.full_energy_j);
    os += ':';
    dbl(r.frac_done);
    os += ':';
    dbl(r.change_s);
    os += ':';
    dbl(r.ff_remaining);
    os += " ids.";
    num(static_cast<long long>(k));
    os += '=';
    os += join_ints(r.node_ids, '/');
    os += " cfg.";
    num(static_cast<long long>(k));
    os += '=';
    num(r.config.nodes);
    os += ':';
    num(r.config.node.threads);
    os += ':';
    num(static_cast<int>(r.config.node.affinity));
    os += ':';
    num(static_cast<int>(r.config.node.mem_level));
    os += ':';
    dbl(r.config.node.cpu_cap.value());
    os += ':';
    dbl(r.config.node.mem_cap.value());
    os += " ovr.";
    num(static_cast<long long>(k));
    os += '=';
    if (r.config.cpu_cap_overrides.empty()) {
      os += '-';
    } else {
      for (std::size_t i = 0; i < r.config.cpu_cap_overrides.size(); ++i) {
        if (i > 0) os += ';';
        dbl(r.config.cpu_cap_overrides[i].value());
      }
    }
  }
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    const QueuedJobResult& out = report_.jobs[j];
    os += " rep.";
    num(static_cast<long long>(j));
    os += '=';
    dbl(out.submit_s);
    os += ':';
    dbl(out.start_s);
    os += ':';
    dbl(out.end_s);
    os += ':';
    num(out.nodes);
    os += ':';
    dbl(out.budget_w);
    os += ':';
    dbl(out.power_w);
    os += ':';
    num(out.attempts);
    os += ':';
    os += out.completed ? '1' : '0';
    os += ':';
    num(out.crashed_node);
  }
  os += " acc=";
  dbl(report_.total_energy_j);
  os += ':';
  dbl(report_.node_seconds_used);
  os += " racc=";
  num(report_.retries);
  os += ':';
  num(report_.jobs_failed);
  os += ':';
  num(report_.caps_reprogrammed);
  os += " cn=";
  if (report_.crashed_nodes.empty())
    os += '-';
  else
    os += join_ints(report_.crashed_nodes, '/');
  os += " racc2=";
  num(report_.redist_claw_backs);
  os += ':';
  num(report_.redist_regrants);
  os += ':';
  num(report_.redist_subsystem_shifts);
  os += ':';
  dbl(report_.redist_reclaimed_w);
  os += ':';
  dbl(report_.redist_granted_w);
  os += " guard=";
  dbl(guard_.violation_s());
  os += ':';
  dbl(guard_.violation_ws());
  os += ':';
  num(guard_.rejected_reads());
  os += ':';
  num(guard_.regrants_rejected());
  os += ':';
  dbl(guard_.budget_w());
  os += " vends=";
  if (injector_ == nullptr) {
    os += '-';
  } else {
    const std::vector<double>& ends = injector_->violation_ends();
    for (std::size_t i = 0; i < ends.size(); ++i) {
      if (i > 0) os += ',';
      dbl(ends[i]);
    }
  }
  os += " det=";
  if (!redist_on_) {
    os += '-';
  } else {
    bool first = true;
    for (const std::string& name : detector_.samples().series_names()) {
      // Series are named node<N>.power_w — the node id is embedded.
      const int node = std::atoi(name.c_str() + 4);
      for (const auto& p : detector_.samples().samples(name)) {
        if (!first) os += ',';
        first = false;
        num(node);
        os += ':';
        dbl(p.t_s);
        os += ':';
        dbl(p.value);
      }
    }
  }
  os += " tl=";
  if (timeline_ != nullptr)
    os += journal_escape(timeline_->to_csv_string());
  else
    os += '-';
  return os;
}

void QueueEventLoop::restore_state(const std::string& payload) {
  const std::map<std::string, std::string> m = parse_tokens(payload);
  init_done_ = parse_int(tok(m, "init"), "init flag") != 0;
  now_ = parse_double(tok(m, "now"), "now");
  // clip-lint: allow(J1) restore_state is the journal's inverse: it rebuilds state FROM a snapshot record during recover(), so journaling here would recurse
  mode_ = static_cast<DegradedMode>(parse_int(tok(m, "mode"), "mode"));
  effective_budget_ = parse_double(tok(m, "ebud"), "effective budget");
  applied_factor_ = parse_double(tok(m, "factor"), "budget factor");
  meters_dark_ = parse_int(tok(m, "dark"), "dark flag") != 0;
  admission_paused_ = parse_int(tok(m, "pause"), "pause flag") != 0;

  const std::string& st = tok(m, "st");
  CLIP_REQUIRE(st.size() == jobs_.size(), "snapshot job-state size mismatch");
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    CLIP_REQUIRE(st[j] >= '0' && st[j] <= '3',
                 "bad snapshot job-state digit");
    state_[j] = static_cast<State>(st[j] - '0');
  }
  const std::vector<std::string> att = split(tok(m, "att"), ',');
  CLIP_REQUIRE(att.size() == jobs_.size(), "snapshot attempts size mismatch");
  for (std::size_t j = 0; j < jobs_.size(); ++j)
    attempts_[j] = static_cast<int>(parse_int(att[j], "attempts"));
  const std::vector<std::string> el = split(tok(m, "el"), ',');
  CLIP_REQUIRE(el.size() == jobs_.size(),
               "snapshot eligibility size mismatch");
  for (std::size_t j = 0; j < jobs_.size(); ++j)
    eligible_s_[j] = parse_double(el[j], "eligible_s");

  restore_bits(node_alive_, tok(m, "alive"), "alive");
  restore_bits(node_busy_, tok(m, "busy"), "busy");
  restore_bits(enforcement_pending_, tok(m, "pend"), "pend");
  restore_bits(crash_seen_, tok(m, "seen.crash"), "seen.crash");
  restore_bits(degrade_seen_, tok(m, "seen.degrade"), "seen.degrade");
  restore_bits(meter_seen_, tok(m, "seen.meter"), "seen.meter");
  restore_bits(capviol_seen_, tok(m, "seen.capviol"), "seen.capviol");
  restore_bits(blackout_seen_, tok(m, "seen.blackout"), "seen.blackout");
  restore_bits(cut_seen_, tok(m, "seen.cut"), "seen.cut");

  wakeup_idx_ =
      static_cast<std::size_t>(parse_int(tok(m, "widx"), "wakeup index"));
  next_tick_s_ = parse_double(tok(m, "tick"), "next tick");

  enforcements_.clear();
  for (const std::string& e : split(tok(m, "enf"), ',')) {
    const std::vector<std::string> f = split(e, ':');
    CLIP_REQUIRE(f.size() == 2, "malformed snapshot enforcement: '" + e + "'");
    enforcements_.push_back(
        {parse_double(f[0], "enforcement at"),
         static_cast<int>(parse_int(f[1], "enforcement node"))});
  }
  retry_wakeups_.clear();
  for (const std::string& w : split(tok(m, "retry"), ','))
    retry_wakeups_.push_back(parse_double(w, "retry wakeup"));
  pending_claws_.clear();
  for (const std::string& c : split(tok(m, "claw"), ',')) {
    const std::vector<std::string> f = split(c, ':');
    CLIP_REQUIRE(f.size() == 4, "malformed snapshot claw: '" + c + "'");
    pending_claws_.push_back(
        {parse_double(f[0], "claw at"),
         static_cast<std::size_t>(parse_int(f[1], "claw job")),
         static_cast<int>(parse_int(f[2], "claw attempt")),
         parse_double(f[3], "claw watts")});
  }

  running_.clear();
  const std::size_t run_n =
      static_cast<std::size_t>(parse_int(tok(m, "run.n"), "running count"));
  for (std::size_t k = 0; k < run_n; ++k) {
    const std::string key = std::to_string(k);
    const std::vector<std::string> f = split(tok(m, "run." + key), ':');
    CLIP_REQUIRE(f.size() == 13, "malformed snapshot running record");
    Running r;
    r.job_index = static_cast<std::size_t>(parse_int(f[0], "running job"));
    r.start_s = parse_double(f[1], "running start");
    r.end_s = parse_double(f[2], "running end");
    r.power_w = parse_double(f[3], "running slice");
    r.true_power_w = parse_double(f[4], "running draw");
    r.energy_j = parse_double(f[5], "running energy");
    r.crashed = parse_int(f[6], "running crashed") != 0;
    r.crashed_node = static_cast<int>(parse_int(f[7], "running crash node"));
    r.prof_s = parse_double(f[8], "running prof_s");
    r.full_energy_j = parse_double(f[9], "running full energy");
    r.frac_done = parse_double(f[10], "running frac");
    r.change_s = parse_double(f[11], "running change_s");
    r.ff_remaining = parse_double(f[12], "running ff_remaining");
    for (const std::string& id : split(tok(m, "ids." + key), '/'))
      r.node_ids.push_back(static_cast<int>(parse_int(id, "node id")));
    const std::vector<std::string> cf = split(tok(m, "cfg." + key), ':');
    CLIP_REQUIRE(cf.size() == 6, "malformed snapshot running config");
    r.config.nodes = static_cast<int>(parse_int(cf[0], "config nodes"));
    r.config.node.threads =
        static_cast<int>(parse_int(cf[1], "config threads"));
    r.config.node.affinity = static_cast<parallel::AffinityPolicy>(
        parse_int(cf[2], "config affinity"));
    r.config.node.mem_level =
        static_cast<sim::MemPowerLevel>(parse_int(cf[3], "config mem level"));
    r.config.node.cpu_cap = Watts(parse_double(cf[4], "config cpu cap"));
    r.config.node.mem_cap = Watts(parse_double(cf[5], "config mem cap"));
    const std::string& ovr = tok(m, "ovr." + key);
    if (ovr != "-")
      for (const std::string& o : split(ovr, ';'))
        r.config.cpu_cap_overrides.push_back(
            Watts(parse_double(o, "config cap override")));
    running_.push_back(std::move(r));
  }

  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    const std::vector<std::string> f =
        split(tok(m, "rep." + std::to_string(j)), ':');
    CLIP_REQUIRE(f.size() == 9, "malformed snapshot job report row");
    QueuedJobResult& out = report_.jobs[j];
    out.submit_s = parse_double(f[0], "report submit");
    out.start_s = parse_double(f[1], "report start");
    out.end_s = parse_double(f[2], "report end");
    out.nodes = static_cast<int>(parse_int(f[3], "report nodes"));
    out.budget_w = parse_double(f[4], "report budget");
    out.power_w = parse_double(f[5], "report power");
    out.attempts = static_cast<int>(parse_int(f[6], "report attempts"));
    out.completed = parse_int(f[7], "report completed") != 0;
    out.crashed_node = static_cast<int>(parse_int(f[8], "report crash node"));
    // Strings are re-derived, not serialized: a job has its names set from
    // the instant its first placement started.
    if (attempts_[j] > 0) {
      out.app = jobs_[j].app.name;
      out.parameters = jobs_[j].app.parameters;
    }
  }
  {
    const std::vector<std::string> f = split(tok(m, "acc"), ':');
    CLIP_REQUIRE(f.size() == 2, "malformed snapshot accounting");
    report_.total_energy_j = parse_double(f[0], "total energy");
    report_.node_seconds_used = parse_double(f[1], "node seconds");
  }
  {
    const std::vector<std::string> f = split(tok(m, "racc"), ':');
    CLIP_REQUIRE(f.size() == 3, "malformed snapshot resilience accounting");
    report_.retries = static_cast<int>(parse_int(f[0], "retries"));
    report_.jobs_failed = static_cast<int>(parse_int(f[1], "jobs failed"));
    report_.caps_reprogrammed =
        static_cast<int>(parse_int(f[2], "caps reprogrammed"));
  }
  report_.crashed_nodes.clear();
  {
    const std::string& cn = tok(m, "cn");
    if (cn != "-")
      for (const std::string& n : split(cn, '/'))
        report_.crashed_nodes.push_back(
            static_cast<int>(parse_int(n, "crashed node")));
  }
  {
    const std::vector<std::string> f = split(tok(m, "racc2"), ':');
    CLIP_REQUIRE(f.size() == 5,
                 "malformed snapshot redistribution accounting");
    report_.redist_claw_backs =
        static_cast<int>(parse_int(f[0], "claw backs"));
    report_.redist_regrants = static_cast<int>(parse_int(f[1], "regrants"));
    report_.redist_subsystem_shifts =
        static_cast<int>(parse_int(f[2], "shifts"));
    report_.redist_reclaimed_w = parse_double(f[3], "reclaimed watts");
    report_.redist_granted_w = parse_double(f[4], "granted watts");
  }
  {
    const std::vector<std::string> f = split(tok(m, "guard"), ':');
    CLIP_REQUIRE(f.size() == 5, "malformed snapshot guard state");
    guard_.restore_counters(
        parse_double(f[0], "violation_s"), parse_double(f[1], "violation_ws"),
        static_cast<std::uint64_t>(parse_int(f[2], "rejected reads")),
        static_cast<std::uint64_t>(parse_int(f[3], "rejected regrants")));
    guard_.set_budget(Watts(parse_double(f[4], "guard budget")));
  }
  {
    const std::string& ve = tok(m, "vends");
    if (injector_ != nullptr) {
      CLIP_REQUIRE(ve != "-",
                   "snapshot has no injector state but one is attached");
      std::vector<double> ends;
      for (const std::string& v : split(ve, ','))
        ends.push_back(parse_double(v, "violation end"));
      injector_->restore_violation_ends(ends);
    }
  }
  if (redist_on_) {
    const std::string& det = tok(m, "det");
    CLIP_REQUIRE(det != "-",
                 "snapshot has no detector samples but redistribution is on");
    for (const std::string& entry : split(det, ',')) {
      const std::vector<std::string> f = split(entry, ':');
      CLIP_REQUIRE(f.size() == 3,
                   "malformed snapshot detector sample: '" + entry + "'");
      detector_.observe(static_cast<int>(parse_int(f[0], "detector node")),
                        parse_double(f[1], "detector t"),
                        parse_double(f[2], "detector draw"));
    }
  }
  if (timeline_ != nullptr) {
    const std::string& tl = tok(m, "tl");
    CLIP_REQUIRE(tl != "-", "snapshot has no timeline but one is attached");
    timeline_->load_csv_string(journal_unescape(tl), "journal snapshot");
  }
}

// In-flight placements were resolved against the fault plan when they
// launched or last re-based; the snapshot stores that resolution. Re-derive
// each from the restored change_s / ff_remaining via FaultInjector::resolve
// (pure over the immutable crash/degrade schedule) and require bit-equality
// — a recovery against the wrong fault plan fails here, loudly.
void QueueEventLoop::rederive_running() {
  if (injector_ == nullptr) return;
  for (const Running& r : running_) {
    const fault::RunResolution res =
        injector_->resolve(r.change_s, r.ff_remaining, r.node_ids);
    CLIP_ENSURE(res.end_s == r.end_s && res.crashed == r.crashed &&
                    res.crashed_node == r.crashed_node,
                "recovered placement does not re-derive under the fault plan "
                "(job " + std::to_string(r.job_index) + ")");
  }
}

QueueReport run_serially(
    sim::SimExecutor& executor, core::ClipScheduler& scheduler,
    Watts cluster_budget,
    const std::vector<workloads::WorkloadSignature>& jobs) {
  CLIP_REQUIRE(!jobs.empty(), "need at least one job");
  QueueReport report;
  double now = 0.0;
  for (const auto& job : jobs) {
    const core::ScheduleDecision d =
        scheduler.schedule(job, cluster_budget);
    const sim::Measurement m = executor.run_exact(job, d.cluster);
    QueuedJobResult r;
    r.app = job.name;
    r.parameters = job.parameters;
    r.submit_s = 0.0;
    r.start_s = now;
    now += m.time.value() + d.profiling_cost.value();
    r.end_s = now;
    r.nodes = d.cluster.nodes;
    r.budget_w = cluster_budget.value();
    r.power_w = m.avg_power.value();
    report.total_energy_j += m.energy.value();
    report.node_seconds_used += r.nodes * (r.end_s - r.start_s);
    report.jobs.push_back(std::move(r));
  }
  report.makespan_s = now;
  double turnaround = 0.0;
  for (const auto& r : report.jobs) turnaround += r.turnaround_s();
  report.mean_turnaround_s =
      turnaround / static_cast<double>(jobs.size());
  report.node_seconds_available =
      report.makespan_s * executor.spec().nodes;
  return report;
}

}  // namespace clip::runtime
