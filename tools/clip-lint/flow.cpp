// ScopeSim — the intra-procedural flow engine. This is C1's forward token
// simulation lifted out of the rule so J1/L1/E1 (and future families) share
// one model of scope: facts are named truths ("hook_ is non-null", "mu_ is
// held") whose lifetime is a scope, a block, or a statement. The erase
// discipline is byte-for-byte the one the C1 fixtures pin:
//   kScope/kBlock die when the brace that owns them closes,
//   kStmt dies at the next top-level `;` — unless a block opened right
//   after it, in which case it lives until that block closes.

#include <algorithm>

#include "analysis.hpp"

namespace clip::lint {

void ScopeSim::step(std::size_t i) {
  const std::string& tx = (*t_)[i].text;
  if (tx == "(") ++paren_;
  if (tx == ")") --paren_;
  if (tx == "try" && (*t_)[i].kind == Token::Kind::kIdent) pending_try_ = true;
  if (tx == "{") {
    ++brace_;
    if (pending_try_) {
      try_braces_.push_back(brace_);
      pending_try_ = false;
    }
    for (Fact& fa : facts_)
      if (fa.kind == FactKind::kStmt && brace_ == fa.depth + 1)
        fa.entered_block = true;
  }
  if (tx == "}") {
    if (!try_braces_.empty() && try_braces_.back() == brace_)
      try_braces_.pop_back();
    --brace_;
    std::erase_if(facts_, [&](const Fact& fa) {
      if (fa.kind == FactKind::kBlock || fa.kind == FactKind::kScope)
        return brace_ < fa.depth;
      return fa.entered_block && brace_ <= fa.depth;
    });
  }
  if (tx == ";" && paren_ == 0) {
    pending_try_ = false;
    std::erase_if(facts_, [&](const Fact& fa) {
      return fa.kind == FactKind::kStmt && brace_ == fa.depth;
    });
  }
}

void ScopeSim::add_fact(std::string name, FactKind kind) {
  Fact fa;
  fa.name = std::move(name);
  fa.kind = kind;
  fa.depth = (kind == FactKind::kBlock) ? brace_ + 1 : brace_;
  facts_.push_back(std::move(fa));
}

bool ScopeSim::has_fact(std::string_view name) const {
  return std::any_of(facts_.begin(), facts_.end(),
                     [&](const Fact& fa) { return fa.name == name; });
}

}  // namespace clip::lint
