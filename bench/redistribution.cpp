// Runtime power redistribution vs static CLIP allocation, across the shared
// resilience scenario catalog (bench/resilience_scenarios.hpp). Each scenario
// runs the Table II job stream through the resilient queue twice — once with
// launch-time allocation only, once with the redistribution loop enabled
// (docs/power-redistribution.md) — against byte-identical FaultPlans, and
// reports the makespan delta plus the redistribution activity (claw-backs,
// re-grants, PKG→DRAM shifts) that bought it. The ground-truth
// violation-seconds column shows the safety half of the contract: clawing
// and re-granting watts never pushes the true cluster draw above the bound
// any longer than static allocation does. `--json` additionally writes
// BENCH_redist.json (schema in bench/README.md), which
// scripts/regression_gate.sh gates on.
#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "core/scheduler.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "resilience_scenarios.hpp"
#include "runtime/queue.hpp"
#include "util/strings.hpp"

using namespace clip;

namespace {

std::string json_row(const bench::Scenario& s,
                     const runtime::QueueReport& stat,
                     const runtime::QueueReport& redist) {
  std::ostringstream os;
  os << "    {\"scenario\": \"" << s.name << "\", \"faults\": " << s.plan.size()
     << ", \"static_makespan_s\": " << format_double(stat.makespan_s, 3)
     << ", \"redist_makespan_s\": " << format_double(redist.makespan_s, 3)
     << ", \"makespan_delta_s\": "
     << format_double(stat.makespan_s - redist.makespan_s, 3)
     << ", \"static_violation_s\": " << format_double(stat.violation_s, 3)
     << ", \"redist_violation_s\": " << format_double(redist.violation_s, 3)
     << ", \"completed\": " << redist.jobs_completed()
     << ", \"claw_backs\": " << redist.redist_claw_backs
     << ", \"regrants\": " << redist.redist_regrants
     << ", \"subsystem_shifts\": " << redist.redist_subsystem_shifts
     << ", \"regrants_rejected\": " << redist.redist_regrants_rejected
     << ", \"reclaimed_w\": " << format_double(redist.redist_reclaimed_w, 1)
     << ", \"granted_w\": " << format_double(redist.redist_granted_w, 1)
     << "}";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchContext ctx(argc, argv);
  bool json = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--json") json = true;

  sim::SimExecutor ex = bench::make_exact_testbed();
  core::ClipScheduler sched(ex, workloads::training_benchmarks());
  const auto jobs = workloads::paper_benchmarks();
  const double budget = 700.0;

  runtime::QueueOptions stat_opt;
  stat_opt.cluster_budget = Watts(budget);
  runtime::QueueOptions redist_opt = stat_opt;
  redist_opt.redist.enabled = true;

  // Warm the knowledge DB so both arms schedule from cached profiles and
  // mid-run re-evaluations carry no phantom profiling cost.
  const double horizon =
      runtime::PowerAwareJobQueue(ex, sched, stat_opt).run(jobs).makespan_s;

  Table t({"scenario", "static (s)", "redist (s)", "delta (s)", "viol (s)",
           "claws", "regrants", "shifts", "reclaimed (W)", "granted (W)"});
  t.set_title("Runtime power redistribution vs static allocation under a " +
              format_double(budget, 0) + " W bound");

  std::vector<std::string> json_rows;
  int improved = 0;
  int violation_regressions = 0;
  for (const auto& s : bench::make_resilience_scenarios(horizon)) {
    runtime::PowerAwareJobQueue stat_queue(ex, sched, stat_opt);
    fault::FaultInjector stat_injector(s.plan, ex.spec().nodes);
    if (!s.plan.empty()) stat_queue.set_fault_injector(&stat_injector);
    const auto stat = stat_queue.run(jobs);

    runtime::PowerAwareJobQueue redist_queue(ex, sched, redist_opt);
    fault::FaultInjector redist_injector(s.plan, ex.spec().nodes);
    if (!s.plan.empty()) redist_queue.set_fault_injector(&redist_injector);
    const auto redist = redist_queue.run(jobs);

    if (redist.makespan_s < stat.makespan_s) ++improved;
    if (redist.violation_s > stat.violation_s + 1e-9)
      ++violation_regressions;
    t.add_row({s.name, format_double(stat.makespan_s, 1),
               format_double(redist.makespan_s, 1),
               format_double(stat.makespan_s - redist.makespan_s, 1),
               format_double(redist.violation_s, 2),
               std::to_string(redist.redist_claw_backs),
               std::to_string(redist.redist_regrants),
               std::to_string(redist.redist_subsystem_shifts),
               format_double(redist.redist_reclaimed_w, 0),
               format_double(redist.redist_granted_w, 0)});
    json_rows.push_back(json_row(s, stat, redist));
  }
  ctx.print(t);
  std::cout << "Redistribution improved the makespan in " << improved
            << " of " << json_rows.size() << " scenarios with "
            << violation_regressions
            << " violation-seconds regressions: claw-backs only reclaim "
               "watts the caps guarantee are not being drawn, so the true "
               "cluster draw never rises above what static allocation "
               "already admitted.\n";

  if (json) {
    std::ofstream os("BENCH_redist.json");
    os << "{\n  \"budget_w\": " << format_double(budget, 0)
       << ",\n  \"jobs\": " << jobs.size()
       << ",\n  \"scenarios_improved\": " << improved
       << ",\n  \"violation_regressions\": " << violation_regressions
       << ",\n  \"scenarios\": [\n";
    for (std::size_t i = 0; i < json_rows.size(); ++i)
      os << json_rows[i] << (i + 1 < json_rows.size() ? ",\n" : "\n");
    os << "  ]\n}\n";
    std::cerr << "wrote BENCH_redist.json\n";
  }
  return 0;
}
