// Two-segment piecewise-linear fitting.
//
// Paper §III-A2b models logarithmic and parabolic scalability curves as two
// linear segments joined at the inflection point N_P. This module fits such
// a model to (x, y) samples by exhaustively scanning candidate breakpoints
// (x is a small discrete set — thread counts 1..24 — so the scan is exact).
#pragma once

#include <cstddef>
#include <vector>

namespace clip::stats {

/// y ≈ (x <= breakpoint) ? a1*x + b1 : a2*x + b2.
struct PiecewiseLinearModel {
  double breakpoint = 0.0;
  double slope1 = 0.0;
  double intercept1 = 0.0;
  double slope2 = 0.0;
  double intercept2 = 0.0;
  double sse = 0.0;  ///< residual sum of squared errors of the fit

  [[nodiscard]] double predict(double x) const;
};

/// Fit both segments by least squares for every candidate breakpoint (taken
/// from the sample xs, excluding the extremes so each segment has >= 2
/// points) and keep the breakpoint with the smallest total SSE.
/// Requires at least 4 samples with distinct x values.
[[nodiscard]] PiecewiseLinearModel fit_piecewise_linear(
    const std::vector<double>& x, const std::vector<double>& y);

/// Simple one-segment least squares fit (slope/intercept + SSE); the
/// building block for the piecewise scan, exposed for reuse and tests.
struct SegmentFit {
  double slope = 0.0;
  double intercept = 0.0;
  double sse = 0.0;
  std::size_t count = 0;
};
[[nodiscard]] SegmentFit fit_segment(const std::vector<double>& x,
                                     const std::vector<double>& y,
                                     std::size_t begin, std::size_t end);

}  // namespace clip::stats
