// Tests for the fast evaluation engine: the exact-run memoization cache
// (sim/exec_cache), the host-parallel + pruned oracle search, the two-phase
// comparison harness, and the knowledge-DB reuse paths. The load-bearing
// property throughout is *determinism*: caching, pruning and parallelism
// must never change a single output byte.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/all_in.hpp"
#include "baselines/clip_adapter.hpp"
#include "baselines/coordinated.hpp"
#include "baselines/lower_limit.hpp"
#include "baselines/oracle.hpp"
#include "core/scheduler.hpp"
#include "obs/session.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "runtime/comparison.hpp"
#include "sim/exec_cache.hpp"
#include "sim/executor.hpp"
#include "workloads/catalog.hpp"

namespace clip {
namespace {

sim::MeterOptions no_noise() {
  sim::MeterOptions m;
  m.enabled = false;
  return m;
}

std::uint64_t counter(obs::ObsSession& s, std::string_view name) {
  const obs::Counter* c = s.metrics().find_counter(name);
  return c == nullptr ? 0 : c->value();
}

sim::ClusterConfig small_config(int threads) {
  sim::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.node.threads = threads;
  cfg.node.affinity = parallel::AffinityPolicy::kScatter;
  cfg.node.cpu_cap = Watts(80.0);
  cfg.node.mem_cap = Watts(30.0);
  return cfg;
}

// ------------------------------------------------------------ cache keys ----

TEST(ExactCacheKey, DistinguishesEveryConfigDimension) {
  const auto w = *workloads::find_benchmark("BT-MZ");
  const std::string prefix =
      sim::ExactRunCache::encode_spec(sim::MachineSpec{});
  const sim::ClusterConfig base = small_config(12);
  const std::string key = sim::ExactRunCache::encode_key(prefix, w, base);

  // Same inputs -> same key.
  EXPECT_EQ(key, sim::ExactRunCache::encode_key(prefix, w, base));

  std::vector<sim::ClusterConfig> variants;
  variants.push_back(base);
  variants.back().nodes = 3;
  variants.push_back(base);
  variants.back().node.threads = 14;
  variants.push_back(base);
  variants.back().node.affinity = parallel::AffinityPolicy::kCompact;
  variants.push_back(base);
  variants.back().node.mem_level = sim::MemPowerLevel::kL2;
  variants.push_back(base);
  variants.back().node.cpu_cap = Watts(80.5);
  variants.push_back(base);
  variants.back().node.mem_cap = Watts(29.0);
  variants.push_back(base);
  variants.back().cpu_cap_overrides = {Watts(80.0), Watts(79.0)};
  for (const auto& v : variants)
    EXPECT_NE(key, sim::ExactRunCache::encode_key(prefix, w, v));

  // Different workload -> different key.
  const auto w2 = *workloads::find_benchmark("CoMD");
  EXPECT_NE(key, sim::ExactRunCache::encode_key(prefix, w2, base));
}

TEST(ExactCacheKey, SpecPrefixCoversFieldsTheFingerprintOmits) {
  // MachineSpec::fingerprint() deliberately ignores the variability draw —
  // two executors differing only in seed would alias under it. The cache
  // prefix must not.
  sim::MachineSpec a;
  sim::MachineSpec b = a;
  b.variability_seed += 1;
  EXPECT_NE(sim::ExactRunCache::encode_spec(a),
            sim::ExactRunCache::encode_spec(b));
  sim::MachineSpec c = a;
  c.variability_sigma += 0.01;
  EXPECT_NE(sim::ExactRunCache::encode_spec(a),
            sim::ExactRunCache::encode_spec(c));
  // spec.nodes, by contrast, is deliberately ABSENT from the prefix: the
  // variability multipliers are drawn sequentially from one seeded stream,
  // so the first cfg.nodes multipliers are the same on an 8-node and a
  // 64-node cluster — topologically identical shards share cache entries.
  // The active node count still keys via cfg.nodes in encode_key, and
  // run_exact validates cfg.nodes against the spec before probing.
  sim::MachineSpec d = a;
  d.nodes += 1;
  EXPECT_EQ(sim::ExactRunCache::encode_spec(a),
            sim::ExactRunCache::encode_spec(d));
}

// ------------------------------------------------------- cache mechanics ----

TEST(ExactRunCache, HitReturnsBitIdenticalMeasurementAndSkipsModel) {
  sim::SimExecutor ex(sim::MachineSpec{}, no_noise());
  sim::ExactRunCache cache;
  obs::ObsSession session;
  ex.set_exact_cache(&cache);
  ex.set_observer(&session);

  const auto w = *workloads::find_benchmark("TeaLeaf");
  const sim::ClusterConfig cfg = small_config(12);
  const sim::Measurement first = ex.run_exact(w, cfg);
  const sim::Measurement second = ex.run_exact(w, cfg);

  EXPECT_EQ(first.time.value(), second.time.value());
  EXPECT_EQ(first.energy.value(), second.energy.value());
  EXPECT_EQ(first.avg_power.value(), second.avg_power.value());
  ASSERT_EQ(first.nodes.size(), second.nodes.size());

  EXPECT_EQ(counter(session, "sim.runs"), 1u);  // one real model evaluation
  EXPECT_EQ(counter(session, "sim.exact_cache_hits"), 1u);
  EXPECT_EQ(counter(session, "sim.exact_cache_misses"), 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ExactRunCache, DetachedExecutorBypassesCacheCounters) {
  sim::SimExecutor ex(sim::MachineSpec{}, no_noise());
  obs::ObsSession session;
  ex.set_observer(&session);
  const auto w = *workloads::find_benchmark("TeaLeaf");
  (void)ex.run_exact(w, small_config(12));
  (void)ex.run_exact(w, small_config(12));
  EXPECT_EQ(counter(session, "sim.runs"), 2u);
  EXPECT_EQ(counter(session, "sim.exact_cache_hits"), 0u);
  EXPECT_EQ(counter(session, "sim.exact_cache_misses"), 0u);
}

TEST(ExactRunCache, EvictionKeepsTheBoundAndOnlyCostsARecompute) {
  sim::ExactCacheOptions opt;
  opt.max_entries = 4;
  opt.shards = 1;  // deterministic: every key lands in the one shard
  sim::ExactRunCache cache(opt);
  sim::SimExecutor ex(sim::MachineSpec{}, no_noise());
  ex.set_exact_cache(&cache);

  const auto w = *workloads::find_benchmark("CoMD");
  const sim::Measurement first = ex.run_exact(w, small_config(2));
  for (int threads : {4, 6, 8, 10, 12})  // five more distinct configs
    (void)ex.run_exact(w, small_config(threads));

  const sim::ExactCacheStats s = cache.stats();
  EXPECT_LE(s.entries, 4u);
  EXPECT_GE(s.evictions, 2u);

  // The first config was evicted (FIFO); querying it again recomputes the
  // same value.
  const sim::Measurement again = ex.run_exact(w, small_config(2));
  EXPECT_EQ(first.time.value(), again.time.value());
  EXPECT_EQ(first.energy.value(), again.energy.value());
}

TEST(ExactRunCache, ClearDropsEntriesButKeepsStatistics) {
  sim::ExactRunCache cache;
  sim::SimExecutor ex(sim::MachineSpec{}, no_noise());
  ex.set_exact_cache(&cache);
  const auto w = *workloads::find_benchmark("CoMD");
  (void)ex.run_exact(w, small_config(4));
  (void)ex.run_exact(w, small_config(4));
  EXPECT_EQ(cache.stats().entries, 1u);
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().hits, 1u);
  const auto m = ex.run_exact(w, small_config(4));
  EXPECT_GT(m.time.value(), 0.0);
  EXPECT_EQ(cache.stats().misses, 2u);
}

// ------------------------------------------------------------ the oracle ----

TEST(OracleEngine, PrunedParallelCachedSearchMatchesLegacyOptimum) {
  const auto w = *workloads::find_benchmark("SP-MZ");

  // Legacy shape: serial, unpruned, uncached — the pre-engine behaviour.
  sim::SimExecutor legacy_ex(sim::MachineSpec{}, no_noise());
  baselines::OracleScheduler legacy(legacy_ex,
                                    baselines::OracleOptions{false});

  // Engine shape: pruned, cached, fanned out over a pool.
  sim::SimExecutor fast_ex(sim::MachineSpec{}, no_noise());
  sim::ExactRunCache cache;
  fast_ex.set_exact_cache(&cache);
  parallel::ThreadPool pool(4);
  baselines::OracleScheduler fast(fast_ex);
  fast.set_pool(&pool);

  for (double budget : {700.0, 1000.0}) {
    const sim::ClusterConfig a = legacy.plan(w, Watts(budget));
    const sim::ClusterConfig b = fast.plan(w, Watts(budget));
    // Pruning may pick a different configuration only on an exact tie, so
    // the contract is equality of the optimal *time*.
    EXPECT_EQ(legacy_ex.run_exact(w, a).time.value(),
              legacy_ex.run_exact(w, b).time.value())
        << "budget " << budget;
    EXPECT_LT(fast.last_search_cost(), legacy.last_search_cost())
        << "budget " << budget;
    EXPECT_GT(fast.last_search_cost(), 0);
  }
}

TEST(OracleEngine, CacheMakesBudgetSweepsCheaper) {
  const auto w = *workloads::find_benchmark("miniAero");
  sim::SimExecutor ex(sim::MachineSpec{}, no_noise());
  sim::ExactRunCache cache;
  obs::ObsSession session;
  ex.set_exact_cache(&cache);
  ex.set_observer(&session);
  baselines::OracleScheduler oracle(ex);

  (void)oracle.plan(w, Watts(900.0));
  const std::uint64_t runs_first = counter(session, "sim.runs");
  (void)oracle.plan(w, Watts(1000.0));
  const std::uint64_t runs_second = counter(session, "sim.runs") - runs_first;
  // The uncapped bound runs are budget-independent, so the second budget
  // re-uses them from the scheduler's bound memo and evaluates strictly
  // less.
  EXPECT_LT(runs_second, runs_first);

  // Re-planning an identical budget replays the exact same cap frontiers,
  // which the cache now serves wholesale: zero new model evaluations.
  const std::uint64_t runs_before_replay = counter(session, "sim.runs");
  (void)oracle.plan(w, Watts(900.0));
  EXPECT_EQ(counter(session, "sim.runs"), runs_before_replay);
  EXPECT_GT(cache.stats().hits, 0u);
}

// ------------------------------------------------- the comparison result ----

runtime::ComparisonCell make_cell(const std::string& app, double budget,
                                  const std::string& method, double rel) {
  runtime::ComparisonCell c;
  c.app = app;
  c.parameters = "C";
  c.budget_w = budget;
  c.method = method;
  c.relative_performance = rel;
  return c;
}

TEST(ComparisonResultIndex, FindLocatesCellsAndTracksGrowth) {
  runtime::ComparisonResult r;
  r.cells.push_back(make_cell("a", 600.0, "CLIP", 1.0));
  r.cells.push_back(make_cell("b", 600.0, "CLIP", 2.0));

  const auto* cell = r.find("b", "C", 600.0, "CLIP");
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->relative_performance, 2.0);
  EXPECT_EQ(r.find("a", "C", 700.0, "CLIP"), nullptr);
  EXPECT_EQ(r.find("a", "C", 600.0, "Oracle"), nullptr);

  // Growth after a lookup: the index rebuilds and sees the new cell.
  r.cells.push_back(make_cell("c", 700.0, "Oracle", 3.0));
  const auto* late = r.find("c", "C", 700.0, "Oracle");
  ASSERT_NE(late, nullptr);
  EXPECT_EQ(late->relative_performance, 3.0);
}

TEST(ComparisonResultIndex, FirstOccurrenceWinsLikeTheLinearScan) {
  runtime::ComparisonResult r;
  r.cells.push_back(make_cell("a", 600.0, "CLIP", 1.5));
  r.cells.push_back(make_cell("a", 600.0, "CLIP", 9.9));  // duplicate key
  const auto* cell = r.find("a", "C", 600.0, "CLIP");
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->relative_performance, 1.5);
}

TEST(ComparisonResultIndex, MeanImprovementUsesTheIndexCorrectly) {
  runtime::ComparisonResult r;
  r.cells.push_back(make_cell("a", 600.0, "CLIP", 1.2));
  r.cells.push_back(make_cell("a", 600.0, "All-In", 1.0));
  r.cells.push_back(make_cell("b", 600.0, "CLIP", 1.5));
  r.cells.push_back(make_cell("b", 600.0, "All-In", 1.0));
  EXPECT_NEAR(r.mean_improvement("CLIP", "All-In"), (0.2 + 0.5) / 2.0, 1e-12);
  EXPECT_NEAR(r.mean_improvement("CLIP", "All-In", {600.0}),
              (0.2 + 0.5) / 2.0, 1e-12);
}

// --------------------------------------------------------- determinism ----

void register_methods(runtime::ComparisonHarness& harness,
                      sim::SimExecutor& ex, parallel::ThreadPool* pool) {
  harness.add_method(
      std::make_shared<baselines::AllInScheduler>(ex.spec()));
  harness.add_method(
      std::make_shared<baselines::LowerLimitScheduler>(ex.spec()));
  harness.add_method(
      std::make_shared<baselines::CoordinatedScheduler>(ex));
  harness.add_method(std::make_shared<baselines::ClipAdapter>(
      ex, workloads::training_benchmarks()));
  auto oracle = std::make_shared<baselines::OracleScheduler>(ex);
  oracle->set_pool(pool);
  harness.add_method(std::move(oracle));
}

/// Byte-exact serialization of a full result — what the bench CSVs are a
/// projection of.
std::string serialize(const runtime::ComparisonResult& r) {
  std::ostringstream os;
  for (const auto& c : r.cells) {
    char row[128];
    // clip-lint: allow(D3) %.17g is the full round-trip precision; this fingerprint reference must match the bench CSV bytes
    std::snprintf(row, sizeof(row), "%.17g,%.17g,%.17g\n", c.budget_w,
                  c.time_s, c.relative_performance);
    os << c.app << ',' << c.parameters << ',' << c.method << ',' << row;
  }
  return os.str();
}

TEST(EvalEngineDeterminism, ParallelCachedHarnessIsByteIdenticalToSerial) {
  // A fig8-shaped run: paper benchmarks × two high budgets × all five
  // methods. Side A is the historical serial/uncached engine; side B turns
  // everything on. Fresh executors per side so the meter's noise stream
  // starts from the same seed.
  const std::vector<workloads::WorkloadSignature> apps(
      workloads::paper_benchmarks().begin(),
      workloads::paper_benchmarks().begin() + 5);
  const std::vector<double> budgets = {1000.0, 1200.0};

  sim::SimExecutor serial_ex{sim::MachineSpec{}};
  runtime::ComparisonHarness serial_harness(serial_ex);
  register_methods(serial_harness, serial_ex, nullptr);
  const auto serial = serial_harness.run(apps, budgets);

  sim::SimExecutor fast_ex{sim::MachineSpec{}};
  sim::ExactRunCache cache;
  fast_ex.set_exact_cache(&cache);
  parallel::ThreadPool pool(4);
  runtime::ComparisonHarness fast_harness(fast_ex);
  register_methods(fast_harness, fast_ex, &pool);
  const auto fast = fast_harness.run(apps, budgets, &pool);

  ASSERT_EQ(serial.cells.size(), fast.cells.size());
  EXPECT_EQ(serialize(serial), serialize(fast));
  EXPECT_GT(cache.stats().hits, 0u);
}

// ------------------------------------------------- knowledge-DB reuse ----

TEST(KnowledgeReuse, BudgetSweepProfilesEachApplicationOnce) {
  sim::SimExecutor ex{sim::MachineSpec{}};
  core::ClipScheduler sched(ex, workloads::training_benchmarks());
  obs::ObsSession session;
  sched.set_observer(&session);

  const auto w = *workloads::find_benchmark("BT-MZ");
  for (double budget : {600.0, 800.0, 1000.0, 1200.0})
    (void)sched.schedule(w, Watts(budget));

  EXPECT_LE(counter(session, "profiler.samples"), 3u);
  EXPECT_EQ(counter(session, "scheduler.db_misses"), 1u);
  EXPECT_EQ(counter(session, "scheduler.db_hits"), 3u);
}

TEST(KnowledgeReuse, SeededSchedulerSkipsProfilingEntirely) {
  sim::SimExecutor ex{sim::MachineSpec{}};
  const auto w = *workloads::find_benchmark("TeaLeaf");

  core::ClipScheduler first(ex, workloads::training_benchmarks());
  const auto original = first.schedule(w, Watts(800.0));

  core::ClipScheduler second(ex, workloads::training_benchmarks());
  obs::ObsSession session;
  second.set_observer(&session);
  EXPECT_GT(second.seed_knowledge_from(first.knowledge_db()), 0u);
  const auto seeded = second.schedule(w, Watts(800.0));

  EXPECT_EQ(counter(session, "profiler.samples"), 0u);
  EXPECT_EQ(counter(session, "scheduler.db_hits"), 1u);
  EXPECT_TRUE(seeded.from_knowledge_db);
  EXPECT_EQ(original.cluster.nodes, seeded.cluster.nodes);
  EXPECT_EQ(original.cluster.node.threads, seeded.cluster.node.threads);
}

TEST(KnowledgeReuse, MergeSkipsForeignAndExistingRecords) {
  core::KnowledgeDbShape here;
  here.machine_fingerprint = "machine-A";
  core::KnowledgeDb mine(here);
  core::KnowledgeRecord r;
  r.name = "app";
  r.parameters = "C";
  mine.insert(r);

  core::KnowledgeDb theirs(here);
  core::KnowledgeRecord same = r;  // existing key: kept, not overwritten
  theirs.insert(same);
  core::KnowledgeRecord fresh = r;
  fresh.parameters = "D";
  theirs.insert(fresh);

  core::KnowledgeDbShape elsewhere;
  elsewhere.machine_fingerprint = "machine-B";
  core::KnowledgeDb far(elsewhere);
  core::KnowledgeRecord foreign = r;
  foreign.parameters = "E";
  far.insert(foreign);  // stamped with machine-B

  EXPECT_EQ(mine.merge_from(theirs), 1u);   // only the "D" record is new
  EXPECT_EQ(mine.merge_from(far), 0u);      // foreign fingerprint rejected
  EXPECT_EQ(mine.size(), 2u);
}

// ------------------------------------------------------ tsan smoke test ----

TEST(EvalEngineConcurrency, SharedCacheUnderParallelForIsRaceFree) {
  sim::SimExecutor ex(sim::MachineSpec{}, no_noise());
  sim::ExactRunCache cache;
  ex.set_exact_cache(&cache);
  const auto w = *workloads::find_benchmark("EP");

  const sim::Measurement expected = ex.run_exact(w, small_config(8));
  parallel::ThreadPool pool(4);
  std::vector<double> times(256, 0.0);
  parallel::parallel_for(
      pool, 0, static_cast<std::int64_t>(times.size()),
      [&](std::int64_t i) {
        // A handful of configs, so workers constantly hit the same shards.
        const auto m = ex.run_exact(w, small_config(2 + 2 * (i % 4)));
        times[static_cast<std::size_t>(i)] = m.time.value();
      },
      parallel::Schedule::kDynamic, 1);

  for (std::size_t i = 0; i < times.size(); ++i) {
    if (i % 4 == 3) {
      EXPECT_EQ(times[i], expected.time.value());
    }
    EXPECT_GT(times[i], 0.0);
  }
  const sim::ExactCacheStats s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, times.size() + 1);
  EXPECT_EQ(s.entries, 4u);
}

}  // namespace
}  // namespace clip
