// Cluster-size scaling — decision quality and decision *cost* as the
// machine grows. CLIP's profiling cost is constant in cluster size (three
// node-level samples), while exhaustive search grows with the configuration
// space: the gap is the operational argument for model-driven coordination
// at scale (the paper's exascale framing, §I).
#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "util/strings.hpp"

using namespace clip;

int main(int argc, char** argv) {
  const bench::BenchContext ctx(argc, argv);

  Table t({"cluster nodes", "budget (W)", "CLIP time (s)",
           "Oracle time (s)", "CLIP/Oracle", "oracle search size",
           "oracle plan latency (ms)", "CLIP plan latency (ms)"});
  t.set_title("Scaling the cluster: decision quality and planning cost");

  for (int nodes : {8, 16, 32, 64}) {
    sim::MachineSpec spec;
    spec.nodes = nodes;
    sim::MeterOptions quiet;
    quiet.enabled = false;
    sim::SimExecutor ex(spec, quiet);
    ctx.attach(ex);
    core::ClipScheduler clip(ex, workloads::training_benchmarks());
    baselines::OracleScheduler oracle(
        ex, baselines::OracleOptions{ctx.prune});
    oracle.set_pool(ctx.pool());

    const auto w = *workloads::find_benchmark("TeaLeaf");
    const Watts budget(spec.max_node_w() * nodes * 0.55);

    // clip-lint: allow(D1) reports the planners' real search cost in ms; a simulated clock has nothing to say here
    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    const auto clip_cfg = clip.schedule(w, budget).cluster;
    const auto t1 = clock::now();
    const auto oracle_cfg = oracle.plan(w, budget);
    const auto t2 = clock::now();

    const double clip_time = ex.run_exact(w, clip_cfg).time.value();
    const double oracle_time = ex.run_exact(w, oracle_cfg).time.value();
    const double clip_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double oracle_ms =
        std::chrono::duration<double, std::milli>(t2 - t1).count();

    t.add_row({std::to_string(nodes), format_double(budget.value(), 0),
               format_double(clip_time, 2), format_double(oracle_time, 2),
               format_double(clip_time / oracle_time, 3),
               std::to_string(oracle.last_search_cost()),
               format_double(oracle_ms, 1), format_double(clip_ms, 1)});
  }
  ctx.print(t);
  if (ctx.use_cache) {
    // The four shards are topologically identical (same node shape, ladder,
    // power params, variability draw), so the exact-run cache must share
    // entries across them — the spec prefix deliberately omits the cluster
    // size (see ExactRunCache::encode_spec). A fingerprint that
    // over-discriminates would show near-zero hits here (the seed showed 4
    // hits in 14,482 runs); demand real sharing.
    const sim::ExactCacheStats stats = ctx.cache()->stats();
    CLIP_REQUIRE(stats.hits >= 256,
                 "cluster-size shards stopped sharing cache entries: " +
                     std::to_string(stats.hits) + " hits");
  }
  std::cout << "CLIP's planning cost is dominated by the one-time profiling "
               "(three sample runs, amortized by the knowledge DB); the "
               "oracle's search grows with the cluster and would be "
               "hundreds of real application runs on hardware.\n";
  return 0;
}
