// Project-level passes for clip-analyze: rules whose truth needs every
// scanned file at once. They consume the per-file FileFacts (which the
// incremental cache persists), so a warm run re-evaluates them from cached
// facts without re-lexing anything — J2/L2 stay correct when an unrelated
// file changes.
//
//   J2 — bidirectional journal-kind coverage: every kind produced at a
//        jlog/append_or_verify site must be listed in known_record_kinds(),
//        and every registered kind must have a producer. A missing arm is
//        how a new record type silently skips recovery/describe coverage.
//   L2 — lock-order cycles: the per-file walks record "A held while B
//        acquired" edges over `guards(...)`-tracked mutexes (cross-TU via
//        @labels); any directed cycle is a deadlock waiting for the right
//        interleaving.

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "lint.hpp"

namespace clip::lint {

namespace {

void rule_j2(const std::vector<FileResult>& files,
             std::vector<Finding>& out) {
  // kind -> first registry site / first produce site (files arrive sorted
  // by path, sites in token order, so "first" is deterministic).
  std::map<std::string, std::pair<std::string, int>> registered;
  std::map<std::string, std::pair<std::string, int>> produced;
  for (const FileResult& f : files) {
    for (const KindSite& k : f.facts.registered_kinds)
      registered.emplace(k.kind, std::make_pair(f.path, k.line));
    for (const KindSite& k : f.facts.produced_kinds)
      produced.emplace(k.kind, std::make_pair(f.path, k.line));
  }
  // No registry in the scanned set (fixture subsets, partial scans): the
  // coverage question is unanswerable, stay silent rather than flag every
  // producer.
  if (registered.empty()) return;

  for (const auto& [kind, site] : produced) {
    if (registered.count(kind) != 0) continue;
    out.push_back({site.first, site.second, "J2",
                   "journal kind '" + kind +
                       "' is produced but not listed in "
                       "known_record_kinds(); replay/describe coverage "
                       "would silently skip it",
                   false,
                   {}});
  }
  for (const auto& [kind, site] : registered) {
    if (produced.count(kind) != 0) continue;
    out.push_back({site.first, site.second, "J2",
                   "journal kind '" + kind +
                       "' is registered in known_record_kinds() but never "
                       "produced; delete it or wire the producer",
                   false,
                   {}});
  }
}

void rule_l2(const std::vector<FileResult>& files,
             std::vector<Finding>& out) {
  // Aggregate edges, first site wins per (held, acquired) pair.
  struct Site {
    std::string file;
    int line;
  };
  std::map<std::pair<std::string, std::string>, Site> edges;
  for (const FileResult& f : files)
    for (const LockEdge& e : f.facts.lock_edges)
      edges.emplace(std::make_pair(e.held, e.acquired),
                    Site{f.path, e.line});
  if (edges.empty()) return;

  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& [pair, site] : edges) adj[pair.first].push_back(pair.second);

  // Iterative DFS with colors; each cycle is reported once, anchored at the
  // first edge (in node order) that closes it.
  std::set<std::string> done;
  std::set<std::pair<std::string, std::string>> reported;
  for (const auto& [start, unused] : adj) {
    (void)unused;
    if (done.count(start) != 0) continue;
    std::vector<std::string> path;
    std::set<std::string> on_path;
    // (node, next-child-index) stack.
    std::vector<std::pair<std::string, std::size_t>> stack;
    stack.emplace_back(start, 0);
    path.push_back(start);
    on_path.insert(start);
    while (!stack.empty()) {
      auto& [node, child] = stack.back();
      const auto it = adj.find(node);
      if (it == adj.end() || child >= it->second.size()) {
        done.insert(node);
        on_path.erase(node);
        path.pop_back();
        stack.pop_back();
        continue;
      }
      const std::string next = it->second[child++];
      if (on_path.count(next) != 0) {
        // Cycle: path suffix from `next` back to `node`, closed by the
        // edge node -> next.
        const auto key = std::make_pair(node, next);
        if (reported.insert(key).second) {
          std::string chain;
          bool in_cycle = false;
          for (const std::string& p : path) {
            if (p == next) in_cycle = true;
            if (in_cycle) chain += p + " -> ";
          }
          chain += next;
          const Site& site = edges.at(key);
          out.push_back({site.file, site.line, "L2",
                         "lock-order cycle: " + chain +
                             "; two threads taking these locks in opposite "
                             "orders deadlock",
                         false,
                         {}});
        }
        continue;
      }
      if (done.count(next) != 0) continue;
      stack.emplace_back(next, 0);
      path.push_back(next);
      on_path.insert(next);
    }
  }
}

}  // namespace

std::vector<Finding> project_rules(std::vector<FileResult>& files) {
  std::vector<Finding> findings;
  rule_j2(files, findings);
  rule_l2(files, findings);

  // Apply the deferred project-rule suppressions, then flag the stale ones.
  for (Finding& fi : findings) {
    for (FileResult& f : files) {
      if (f.path != fi.file) continue;
      for (Suppression& sup : f.project_suppressions) {
        if (sup.reason.empty()) continue;
        if (std::find(sup.rules.begin(), sup.rules.end(), fi.rule) ==
            sup.rules.end())
          continue;
        if (!sup.file_scope && sup.target_line != fi.line) continue;
        fi.suppressed = true;
        fi.reason = sup.reason;
        sup.used = true;
        break;
      }
      if (fi.suppressed) break;
    }
  }
  for (const FileResult& f : files) {
    for (const Suppression& sup : f.project_suppressions) {
      if (sup.used || sup.reason.empty() || sup.rules.empty()) continue;
      bool all_known = true;
      for (const std::string& r : sup.rules)
        if (std::find(known_rules().begin(), known_rules().end(), r) ==
            known_rules().end())
          all_known = false;
      if (!all_known) continue;
      findings.push_back({f.path, sup.comment_line, "LINT",
                          "suppression never matched a finding; delete it",
                          false,
                          {}});
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

}  // namespace clip::lint
