// Scalability-trend classification (paper §III-A1).
//
// CLIP compares the performance of the half-core and all-core sample
// profiles:   ratio = Perf_half / Perf_all
//   ratio <  0.7        -> linear
//   0.7 <= ratio < 1.0  -> logarithmic
//   ratio >= 1.0        -> parabolic
#pragma once

#include "core/profile.hpp"
#include "workloads/signature.hpp"

namespace clip::core {

struct ClassifierThresholds {
  double linear_below = 0.7;
  double parabolic_at_or_above = 1.0;
};

class ScalabilityClassifier {
 public:
  explicit ScalabilityClassifier(
      ClassifierThresholds thresholds = ClassifierThresholds{})
      : thresholds_(thresholds) {}

  [[nodiscard]] workloads::ScalabilityClass classify(double ratio) const;
  [[nodiscard]] workloads::ScalabilityClass classify(
      const ProfileData& profile) const;

  [[nodiscard]] const ClassifierThresholds& thresholds() const {
    return thresholds_;
  }

 private:
  ClassifierThresholds thresholds_;
};

}  // namespace clip::core
