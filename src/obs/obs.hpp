// clip::obs — observability for the CLIP decision pipeline.
//
// CLIP's output is a *decision* (node count, concurrency, affinity, memory
// level, power caps); when a decision looks wrong, the question is always
// "which stage chose this and from what inputs?". This subsystem answers it
// with two instruments behind one ObsSession handle:
//
//   * Tracing  — nested, argument-carrying spans over every pipeline stage
//                (profile → classify → inflect → node_select → allocate →
//                coordinate) and the substrates beneath them, exported as
//                Chrome-trace JSON (Perfetto / chrome://tracing) or JSONL.
//   * Metrics  — counters, gauges and fixed-bucket histograms with
//                p50/p90/p99 queries, rendered as an ASCII summary table.
//
// Production power-bounded fleets are operated through exactly this kind of
// monitoring layer (cf. PAPERS.md: the 100 MW-scale AI-cluster provisioning
// work and WattsApp both feed runtime optimization from continuous
// power/perf telemetry); here it also anchors the repo's own performance
// claims: scheduler planning latency is a recorded histogram, not an
// anecdote.
//
// Design constraints, in order:
//   1. Zero cost detached — every hook is one branch when no session (or no
//      sink) is attached; attaching is a runtime choice, never a rebuild.
//   2. Deterministic — timestamps come from an injected monotonic Clock
//      (FakeClock in tests ⇒ byte-identical traces); no wall-clock dates
//      appear in any recorded value.
//   3. Thread-safe — recording uses atomics (metrics) or a sink-side lock
//      (spans); the simulator and job queue record from many threads.
//
// See docs/observability.md for the span taxonomy, metric name table and a
// worked `clipctl trace` example.
#pragma once

#include "obs/alerts.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/session.hpp"
#include "obs/sink.hpp"
#include "obs/telemetry_server.hpp"
#include "obs/timeline.hpp"
#include "obs/trace_context.hpp"
#include "obs/tracer.hpp"
