// Power-aware job queue — operating the cluster on a stream of jobs.
//
// The paper's execution module launches single jobs "through our job
// scheduler" (§IV-B3); this queue is that scheduler: it packs multiple jobs
// onto the cluster at once while the *sum* of their power allocations never
// exceeds the cluster budget (the defining constraint of power-bounded
// computing — cf. POWsched [11], which shifts power between concurrent
// applications).
//
// Policy (FCFS with optional backfill), evaluated event-driven:
//   * a job may start when free nodes and free watts remain;
//   * CLIP first shapes the job as if the free watts were all its own, then
//     is constrained to the free nodes with a proportional budget slice;
//   * completions free nodes and watts, unblocking the queue.
//
// Resilience (docs/robustness.md): with a fault::FaultInjector attached the
// queue survives an imperfect substrate. Node crashes abort the jobs holding
// them; the queue reclaims the dead node's watts, requeues the job under the
// RetryPolicy (bounded attempts, exponential backoff; crashed nodes leave
// the pool for good, so retries are structurally excluded from them) and
// marks jobs failed once attempts are exhausted. Thermal degradation
// stretches affected jobs. A BudgetGuard watches the (meter-corrupted,
// plausibility-filtered) cluster draw, detects overshoot from unenforced
// RAPL caps, claws the violating node's cap back after an actuation latency,
// and accounts violation-seconds. With no injector — or an empty FaultPlan —
// every decision, measurement and report field is byte-identical to the
// fault-free queue.
//
// Redistribution (docs/power-redistribution.md): with
// QueueOptions::redist.enabled the event loop additionally revisits launch
// allocations at runtime. A periodic tick feeds plausibility-filtered
// per-node power samples to a SlackDetector; slack above the headroom is
// clawed back after a reaction latency (returning the watts to the free
// pool, where queued jobs see them first), remaining free watts are
// re-granted to the running job whose completion improves the most (each
// candidate re-evaluated through the memoized evaluation engine), and
// memory-phase jobs trade PKG watts for DRAM bandwidth inside their slice.
// Disabled (the default), no tick ever fires and the run is byte-identical
// to the static-allocation queue.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/scheduler.hpp"
#include "fault/budget_guard.hpp"
#include "fault/injector.hpp"
#include "obs/session.hpp"
#include "runtime/redistribution.hpp"
#include "sim/executor.hpp"
#include "util/units.hpp"
#include "workloads/signature.hpp"

namespace clip::obs {
class Timeline;
}

namespace clip::runtime {

struct QueueOptions {
  Watts cluster_budget{1000.0};
  bool backfill = true;          ///< allow later jobs to jump a blocked head
  double min_node_power_w = 45.0;  ///< below this a node is not worth waking
  fault::RetryPolicy retry;        ///< crash-killed jobs: bounded retries
  fault::BudgetGuardOptions guard; ///< cluster-budget watchdog
  RedistributionOptions redist;    ///< runtime power redistribution (off)
};

/// A queue submission: the workload plus optional placement constraints.
struct QueueJob {
  workloads::WorkloadSignature app;
  /// 0 = let CLIP pick the node count; otherwise the job arrives with a
  /// predefined count (an MPI launch line) and is scheduled constrained.
  int requested_nodes = 0;
};

/// One job's trajectory through the queue.
struct QueuedJobResult {
  std::string app;
  std::string parameters;
  double submit_s = 0.0;
  double start_s = 0.0;
  double end_s = 0.0;
  int nodes = 0;
  double budget_w = 0.0;   ///< power slice while running
  double power_w = 0.0;    ///< measured draw
  int attempts = 1;        ///< placements consumed (> 1 after crash retries)
  bool completed = true;   ///< false: retries exhausted or no nodes left
  int crashed_node = -1;   ///< node whose death last aborted the job
  [[nodiscard]] double turnaround_s() const { return end_s - submit_s; }
  [[nodiscard]] double wait_s() const { return start_s - submit_s; }
};

struct QueueReport {
  std::vector<QueuedJobResult> jobs;
  double makespan_s = 0.0;
  double mean_turnaround_s = 0.0;
  double total_energy_j = 0.0;
  double node_seconds_used = 0.0;
  double node_seconds_available = 0.0;  ///< makespan * cluster nodes

  // --- resilience accounting (all zero on a fault-free run) ---------------
  int retries = 0;               ///< crash-triggered requeues
  int jobs_failed = 0;           ///< submitted jobs that never completed
  std::vector<int> crashed_nodes;  ///< nodes lost, in crash order
  int caps_reprogrammed = 0;     ///< guard claw-backs of violated caps
  double violation_s = 0.0;      ///< seconds the true draw exceeded budget
  double violation_ws = 0.0;     ///< watt-seconds above the budget
  std::uint64_t meter_reads_rejected = 0;  ///< implausible readings filtered

  // --- redistribution accounting (all zero with redist disabled) ----------
  int redist_claw_backs = 0;       ///< slack claw-backs actuated
  int redist_regrants = 0;         ///< free-pool grants to running jobs
  int redist_subsystem_shifts = 0; ///< PKG→DRAM shifts applied
  std::uint64_t redist_regrants_rejected = 0;  ///< guard-refused re-grants
  double redist_reclaimed_w = 0.0; ///< total watts clawed back
  double redist_granted_w = 0.0;   ///< total watts re-granted

  [[nodiscard]] double node_utilization() const {
    return node_seconds_available > 0.0
               ? node_seconds_used / node_seconds_available
               : 0.0;
  }
  [[nodiscard]] std::size_t jobs_completed() const {
    std::size_t n = 0;
    for (const auto& j : jobs)
      if (j.completed) ++n;
    return n;
  }
};

class PowerAwareJobQueue {
 public:
  PowerAwareJobQueue(sim::SimExecutor& executor,
                     core::ClipScheduler& scheduler,
                     QueueOptions options = QueueOptions{});

  /// Run all jobs (submitted at t=0, FCFS order) to completion and report.
  [[nodiscard]] QueueReport run(
      const std::vector<workloads::WorkloadSignature>& jobs);

  /// As above, with per-job placement constraints.
  [[nodiscard]] QueueReport run(const std::vector<QueueJob>& jobs);

  /// Attach an observability session (nullptr detaches): `queue.depth` /
  /// `queue.running` gauges track the event loop, each start attempt emits
  /// a "queue.try_start" span, and per-job waits (simulated seconds, so
  /// deterministic) feed the `queue.job_wait_s` histogram. Fault handling
  /// adds the fault.* / queue.retries / budget.* series of
  /// docs/observability.md.
  void set_observer(obs::ObsSession* obs) { obs_ = obs; }

  /// Attach a fault injector (nullptr detaches; not owned, must outlive the
  /// run). The injector's cap-violation windows are mutated by guard
  /// claw-backs, so attach a fresh injector per run.
  void set_fault_injector(fault::FaultInjector* injector) {
    injector_ = injector;
  }

  /// Attach a flight recorder (nullptr detaches; not owned). The event loop
  /// records, on the simulated-seconds axis: `queue.depth` / `queue.running`
  /// / `budget.free_w` at every scheduling pass, per-node `node<N>.power_w`
  /// / `node<N>.cap_w` steps at job start/finish (and the guard's sampled
  /// true draw under faults), `fault.active` plus a labeled `fault` event
  /// stream for injected events and claw-backs, and a `job` event stream
  /// (start/finish/crash/requeue/fail). With no timeline attached every
  /// hook is one branch and the run is byte-identical to before.
  void set_timeline(obs::Timeline* timeline) { timeline_ = timeline; }

 private:
  sim::SimExecutor* executor_;
  core::ClipScheduler* scheduler_;
  QueueOptions options_;
  obs::ObsSession* obs_ = nullptr;
  fault::FaultInjector* injector_ = nullptr;
  obs::Timeline* timeline_ = nullptr;
};

/// Reference policy: one job at a time with the whole budget (what a
/// conventional power-bounded site does). Used by the throughput bench.
[[nodiscard]] QueueReport run_serially(
    sim::SimExecutor& executor, core::ClipScheduler& scheduler,
    Watts cluster_budget,
    const std::vector<workloads::WorkloadSignature>& jobs);

}  // namespace clip::runtime
