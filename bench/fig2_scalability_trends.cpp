// Figure 2 — scalability trends of the three application classes: speedup
// versus core count at several processor frequencies, for a linear (EP), a
// logarithmic (BT-MZ) and a parabolic (SP-MZ) application on one node.
//
// Frequencies are pinned the way the real testbed pins them: through the
// RAPL contract, by bisecting the PKG cap until the solver lands on the
// requested DVFS state.
#include <iostream>

#include "bench_common.hpp"
#include "util/strings.hpp"

using namespace clip;

namespace {

double time_at(sim::SimExecutor& ex, const workloads::WorkloadSignature& w,
               int cores, double freq_ghz) {
  sim::ClusterConfig cfg;
  cfg.nodes = 1;
  cfg.node.threads = cores;
  cfg.node.affinity = parallel::AffinityPolicy::kScatter;
  double lo = 5.0, hi = 400.0;
  sim::Measurement m;
  for (int iter = 0; iter < 48; ++iter) {
    cfg.node.cpu_cap = Watts(0.5 * (lo + hi));
    m = ex.run_exact(w, cfg);
    const double f = m.nodes[0].frequency.value();
    if (f > freq_ghz + 1e-6)
      hi = cfg.node.cpu_cap.value();
    else if (f < freq_ghz - 1e-6 || m.nodes[0].duty_factor < 1.0)
      lo = cfg.node.cpu_cap.value();
    else
      return m.time.value();
  }
  return m.time.value();
}

void sweep(const bench::BenchContext& ctx, sim::SimExecutor& ex,
           const workloads::WorkloadSignature& w, const char* panel) {
  const double freqs_ghz[] = {1.2, 1.8, 2.3};

  Table t({"cores", "speedup @1.2GHz", "speedup @1.8GHz",
           "speedup @2.3GHz"});
  t.set_title(std::string("Fig. 2") + panel + " — " + w.name + " (" +
              workloads::to_string(w.expected_class) +
              "): speedup S(n) = T(1)/T(n) vs cores and frequency");

  double t1[3];
  for (int i = 0; i < 3; ++i) t1[i] = time_at(ex, w, 1, freqs_ghz[i]);

  for (int cores = 1; cores <= 24; cores += (cores < 4 ? 1 : 2)) {
    std::vector<std::string> row{std::to_string(cores)};
    for (int i = 0; i < 3; ++i)
      row.push_back(
          format_double(t1[i] / time_at(ex, w, cores, freqs_ghz[i]), 2));
    t.add_row(std::move(row));
  }
  ctx.print(t);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchContext ctx(argc, argv);
  sim::SimExecutor ex = bench::make_exact_testbed();
  sweep(ctx, ex, *workloads::find_benchmark("EP"), "a");
  sweep(ctx, ex, *workloads::find_benchmark("BT-MZ"), "b");
  sweep(ctx, ex, *workloads::find_benchmark("SP-MZ"), "c");
  std::cout << "Expected shapes: (a) linear in n and f; (b) linear until "
               "the inflection, reduced growth after; (c) performance peaks "
               "and then degrades with additional cores.\n";
  return 0;
}
