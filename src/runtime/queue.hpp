// Power-aware job queue — operating the cluster on a stream of jobs.
//
// The paper's execution module launches single jobs "through our job
// scheduler" (§IV-B3); this queue is that scheduler: it packs multiple jobs
// onto the cluster at once while the *sum* of their power allocations never
// exceeds the cluster budget (the defining constraint of power-bounded
// computing — cf. POWsched [11], which shifts power between concurrent
// applications).
//
// Policy (FCFS with optional backfill), evaluated event-driven:
//   * a job may start when free nodes and free watts remain;
//   * CLIP first shapes the job as if the free watts were all its own, then
//     is constrained to the free nodes with a proportional budget slice;
//   * completions free nodes and watts, unblocking the queue.
//
// Resilience (docs/robustness.md): with a fault::FaultInjector attached the
// queue survives an imperfect substrate. Node crashes abort the jobs holding
// them; the queue reclaims the dead node's watts, requeues the job under the
// RetryPolicy (bounded attempts, exponential backoff; crashed nodes leave
// the pool for good, so retries are structurally excluded from them) and
// marks jobs failed once attempts are exhausted. Thermal degradation
// stretches affected jobs. A BudgetGuard watches the (meter-corrupted,
// plausibility-filtered) cluster draw, detects overshoot from unenforced
// RAPL caps, claws the violating node's cap back after an actuation latency,
// and accounts violation-seconds. With no injector — or an empty FaultPlan —
// every decision, measurement and report field is byte-identical to the
// fault-free queue.
//
// Redistribution (docs/power-redistribution.md): with
// QueueOptions::redist.enabled the event loop additionally revisits launch
// allocations at runtime. A periodic tick feeds plausibility-filtered
// per-node power samples to a SlackDetector; slack above the headroom is
// clawed back after a reaction latency (returning the watts to the free
// pool, where queued jobs see them first), remaining free watts are
// re-granted to the running job whose completion improves the most (each
// candidate re-evaluated through the memoized evaluation engine), and
// memory-phase jobs trade PKG watts for DRAM bandwidth inside their slice.
// Disabled (the default), no tick ever fires and the run is byte-identical
// to the static-allocation queue.
//
// Crash consistency (docs/robustness.md): the event loop lives in
// QueueEventLoop, a single-shot class whose entire state can be serialized.
// With a Journal attached (runtime/journal.hpp) every state-changing event
// is journaled and the state is periodically snapshotted;
// QueueEventLoop::recover restores the latest snapshot from a journal whose
// tail was lost with the dying coordinator, replays the surviving suffix as
// verification, re-derives in-flight placements against the fault plan, and
// resumes — finishing with byte-identical reports, summaries and timelines
// to a run that never died. Degraded operating modes (METER_BLACKOUT,
// BUDGET_BROWNOUT) are driven by fault-plan entries and surfaced through
// the mode.* observability series.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/scheduler.hpp"
#include "fault/budget_guard.hpp"
#include "fault/injector.hpp"
#include "obs/session.hpp"
#include "obs/trace_context.hpp"
#include "runtime/redistribution.hpp"
#include "sim/executor.hpp"
#include "util/units.hpp"
#include "workloads/signature.hpp"

namespace clip::obs {
class Timeline;
class TelemetryServer;
}

namespace clip::runtime {

class Journal;

/// Causal tracing of jobs through the coordinator (docs/observability.md).
/// Disabled (the default), no TraceContext is minted, no `trace=` token
/// appears in any journal record or timeline event, jobs.csv keeps its
/// legacy column set and the run is byte-identical to the untraced queue.
struct TraceOptions {
  bool enabled = false;
  /// Seed of the clip::Rng stream trace ids are drawn from; ids are a
  /// deterministic function of (seed, job order), so recovery re-derives
  /// the same ids the dying run assigned.
  std::uint64_t seed = 0x7C11u;
};

struct QueueOptions {
  Watts cluster_budget{1000.0};
  bool backfill = true;          ///< allow later jobs to jump a blocked head
  double min_node_power_w = 45.0;  ///< below this a node is not worth waking
  fault::RetryPolicy retry;        ///< crash-killed jobs: bounded retries
  fault::BudgetGuardOptions guard; ///< cluster-budget watchdog
  RedistributionOptions redist;    ///< runtime power redistribution (off)
  TraceOptions trace;              ///< causal per-job trace ids (off)
  /// Port for the embeddable read-only telemetry server
  /// (obs/telemetry_server.hpp) on 127.0.0.1: -1 (the default) starts no
  /// server and keeps the run byte-identical to the serverless queue;
  /// 0 binds an ephemeral port (read back via telemetry_server()->port()).
  int telemetry_port = -1;
};

/// A queue submission: the workload plus optional placement constraints.
struct QueueJob {
  workloads::WorkloadSignature app;
  /// 0 = let CLIP pick the node count; otherwise the job arrives with a
  /// predefined count (an MPI launch line) and is scheduled constrained.
  int requested_nodes = 0;
};

/// One job's trajectory through the queue.
struct QueuedJobResult {
  std::string app;
  std::string parameters;
  double submit_s = 0.0;
  double start_s = 0.0;
  double end_s = 0.0;
  int nodes = 0;
  double budget_w = 0.0;   ///< power slice while running
  double power_w = 0.0;    ///< measured draw
  int attempts = 1;        ///< placements consumed (> 1 after crash retries)
  bool completed = true;   ///< false: retries exhausted or no nodes left
  int crashed_node = -1;   ///< node whose death last aborted the job
  std::string trace_id;    ///< 16-hex causal id; empty with tracing off
  [[nodiscard]] double turnaround_s() const { return end_s - submit_s; }
  [[nodiscard]] double wait_s() const { return start_s - submit_s; }
};

struct QueueReport {
  std::vector<QueuedJobResult> jobs;
  double makespan_s = 0.0;
  double mean_turnaround_s = 0.0;
  double total_energy_j = 0.0;
  double node_seconds_used = 0.0;
  double node_seconds_available = 0.0;  ///< makespan * cluster nodes

  // --- resilience accounting (all zero on a fault-free run) ---------------
  int retries = 0;               ///< crash-triggered requeues
  int jobs_failed = 0;           ///< submitted jobs that never completed
  std::vector<int> crashed_nodes;  ///< nodes lost, in crash order
  int caps_reprogrammed = 0;     ///< guard claw-backs of violated caps
  double violation_s = 0.0;      ///< seconds the true draw exceeded budget
  double violation_ws = 0.0;     ///< watt-seconds above the budget
  std::uint64_t meter_reads_rejected = 0;  ///< implausible readings filtered

  // --- redistribution accounting (all zero with redist disabled) ----------
  int redist_claw_backs = 0;       ///< slack claw-backs actuated
  int redist_regrants = 0;         ///< free-pool grants to running jobs
  int redist_subsystem_shifts = 0; ///< PKG→DRAM shifts applied
  std::uint64_t redist_regrants_rejected = 0;  ///< guard-refused re-grants
  double redist_reclaimed_w = 0.0; ///< total watts clawed back
  double redist_granted_w = 0.0;   ///< total watts re-granted

  [[nodiscard]] double node_utilization() const {
    return node_seconds_available > 0.0
               ? node_seconds_used / node_seconds_available
               : 0.0;
  }
  [[nodiscard]] std::size_t jobs_completed() const {
    std::size_t n = 0;
    for (const auto& j : jobs)
      if (j.completed) ++n;
    return n;
  }
};

/// Degraded operating modes of the event loop (docs/robustness.md). Entered
/// and left on fault-plan windows (fault::MeterBlackout, fault::BudgetCut);
/// with neither in the plan the machine never leaves kNormal and the run is
/// byte-identical to the queue before the modes existed.
enum class DegradedMode {
  kNormal = 0,
  /// Cluster power meters dark: the guard's sampling pass and the
  /// redistribution loop freeze (no claw-backs or re-grants on stale data);
  /// launches continue under the conservative static caps already granted.
  kMeterBlackout = 1,
  /// The facility cut the budget at runtime: running jobs are clawed back
  /// proportionally to fit the new budget and admission pauses until the
  /// cut window ends. Takes display precedence over a concurrent blackout.
  kBudgetBrownout = 2,
};
[[nodiscard]] const char* to_string(DegradedMode mode);

/// The queue's event loop as a single-shot, crash-consistent object: one
/// constructed instance runs one job stream exactly once (via run(), or
/// recover() to resume a prior instance's journal). All state lives in
/// members so a snapshot can serialize it completely; see the header
/// comment and runtime/journal.hpp for the recovery contract.
class QueueEventLoop {
 public:
  /// Validates options and jobs exactly as PowerAwareJobQueue does.
  QueueEventLoop(sim::SimExecutor& executor, core::ClipScheduler& scheduler,
                 QueueOptions options, std::vector<QueueJob> jobs);
  ~QueueEventLoop();  ///< out-of-line: owns the telemetry server by unique_ptr

  /// Attachments — same contracts as PowerAwareJobQueue's setters.
  void set_observer(obs::ObsSession* obs) { obs_ = obs; }
  void set_fault_injector(fault::FaultInjector* injector) {
    injector_ = injector;
  }
  void set_timeline(obs::Timeline* timeline) { timeline_ = timeline; }
  /// Attach a write-ahead journal (nullptr detaches; not owned). Every
  /// state-changing event appends one record and the loop state is
  /// snapshotted every JournalOptions::snapshot_every records. With no
  /// journal attached every hook is one branch and the run is
  /// byte-identical to the unjournaled queue.
  void set_journal(Journal* journal) { journal_ = journal; }

  /// Run the job stream to completion (single-shot: throws on reuse).
  [[nodiscard]] QueueReport run();

  /// Resume a run whose coordinator died, from `journal` (also attaches
  /// it): restore the latest snapshot, replay the surviving suffix as
  /// verification against the loop's own re-derived decisions (a divergent
  /// suffix is truncated and reported as a journal gap), re-derive the
  /// restored in-flight placements against the fault plan, and run to
  /// completion. The loop must be constructed with the same executor,
  /// scheduler, options and jobs as the run that wrote the journal, and
  /// given fresh injector/timeline attachments (their state is restored
  /// from the snapshot). A journal with no snapshot yet restarts from
  /// scratch. Single-shot, like run().
  [[nodiscard]] QueueReport recover(Journal& journal);

  /// Mode the loop was in when it finished (kNormal unless a blackout or
  /// budget-cut window was still open at the end of the run).
  [[nodiscard]] DegradedMode mode() const { return mode_; }

  /// The loop-owned telemetry server: non-null only while a run started
  /// with QueueOptions::telemetry_port >= 0 is alive. Tests and `clipctl
  /// serve` read the bound port (and poke endpoints) through it.
  [[nodiscard]] obs::TelemetryServer* telemetry_server() const;

  /// The TraceContext minted for job `j` (invalid context when tracing is
  /// off or the run has not been prepared yet).
  [[nodiscard]] obs::TraceContext trace_of(std::size_t j) const {
    return j < traces_.size() ? traces_[j] : obs::TraceContext{};
  }

 private:
  struct Running {
    std::size_t job_index = 0;
    double start_s = 0.0;
    double end_s = 0.0;        ///< completion, or the abort instant if crashed
    std::vector<int> node_ids;
    double power_w = 0.0;      ///< reserved slice
    double true_power_w = 0.0; ///< exact measured draw
    double energy_j = 0.0;     ///< billed run energy (adjusted on abort/re-base)
    bool crashed = false;
    int crashed_node = -1;
    // --- redistribution bookkeeping (inert stores while redist is off) ----
    sim::ClusterConfig config;   ///< caps/threads the job currently runs under
    double prof_s = 0.0;         ///< profiling cost billed into the duration
    double full_energy_j = 0.0;  ///< full-run energy at the current config
    double frac_done = 0.0;      ///< work fraction done at the last re-base
    double change_s = 0.0;       ///< instant of the last re-base
    double ff_remaining = 0.0;   ///< fault-free work seconds left at change_s
  };
  enum class State { kPending, kRunning, kDone, kFailed };
  struct Enforcement {
    double at_s;
    int node;
  };
  struct PendingClaw {
    double at_s;      ///< actuation instant (decision + reaction latency)
    std::size_t job;
    int attempt;      ///< placement the claw targets; a retry invalidates it
    double watts;
  };

  // --- the event loop (former PowerAwareJobQueue::run lambdas) ------------
  [[nodiscard]] int free_nodes() const;
  [[nodiscard]] double free_power() const;
  [[nodiscard]] std::vector<int> active_node_ids() const;
  [[nodiscard]] double true_cluster_power(double t) const;
  [[nodiscard]] int faults_active_at(double t) const;
  bool try_start(std::size_t j);
  void start_eligible();
  void apply_fault_events();
  void claw_back(int node);
  void guard_sample();
  [[nodiscard]] double frac_at(const Running& r, double t) const;
  [[nodiscard]] double projected_end(const Running& r,
                                     const sim::Measurement& m1) const;
  void rebase_running(Running& r, const sim::ClusterConfig& cfg,
                      const sim::Measurement& m1, double new_slice);
  void apply_claw(const PendingClaw& c);
  void redist_tick();
  void try_regrant();
  bool finish_one_due();
  void prepare_run();
  [[nodiscard]] QueueReport run_fresh();
  void init_pass();
  void main_loop();
  void finalize();

  // --- degraded-mode state machine ----------------------------------------
  void update_mode();
  void brownout_clawback();

  // --- live observability ---------------------------------------------------
  /// The obs session for *action-level* emissions (counters, spans,
  /// latency histograms tied to queue decisions). Returns nullptr while a
  /// journal suffix is being replayed during recover(), so replayed steps
  /// do not double-count actions the dying run already recorded; timeline
  /// and journal.* emissions deliberately bypass this (the timeline is
  /// re-built from the snapshot and journal counters describe recovery
  /// itself).
  [[nodiscard]] obs::ObsSession* action_obs() const {
    return replaying_ ? nullptr : obs_;
  }
  /// " trace=<16hex>" for job `j` when tracing is on; "" otherwise. The
  /// shared suffix format keeps journal payloads and timeline labels
  /// greppable by one token.
  [[nodiscard]] std::string trace_suffix(std::size_t j) const;
  /// Push a fresh StatusSnapshot into the telemetry server (one branch
  /// when no server is attached).
  void publish_status(bool run_active);

  // --- journaling ----------------------------------------------------------
  void jlog(std::string_view kind, std::string payload);
  void append_or_verify(std::string_view kind, std::string payload);
  void emit_snapshot();
  void maybe_snapshot();
  [[nodiscard]] std::string begin_payload() const;
  [[nodiscard]] std::string admits_payload() const;
  [[nodiscard]] std::string serialize_state() const;
  void restore_state(const std::string& payload);
  void rederive_running();

  sim::SimExecutor* executor_;
  core::ClipScheduler* scheduler_;
  QueueOptions options_;
  std::vector<QueueJob> jobs_;
  obs::ObsSession* obs_ = nullptr;
  fault::FaultInjector* injector_ = nullptr;
  obs::Timeline* timeline_ = nullptr;
  Journal* journal_ = nullptr;

  int total_nodes_;
  double total_budget_;
  fault::BudgetGuard guard_;
  SlackDetector detector_;
  Redistributor redistributor_;

  bool started_ = false;
  bool init_done_ = false;
  QueueReport report_;
  std::vector<State> state_;
  std::vector<int> attempts_;
  std::vector<double> eligible_s_;
  std::vector<Running> running_;
  std::vector<bool> node_alive_;
  std::vector<bool> node_busy_;
  double now_ = 0.0;
  const fault::FaultPlan* plan_ = nullptr;
  std::vector<bool> crash_seen_;
  std::vector<bool> degrade_seen_;
  std::vector<bool> meter_seen_;
  std::vector<bool> capviol_seen_;
  std::vector<bool> blackout_seen_;
  std::vector<bool> cut_seen_;
  std::vector<Enforcement> enforcements_;  ///< scheduled cap claw-backs
  std::vector<double> retry_wakeups_;      ///< backoff expiry instants
  std::vector<bool> enforcement_pending_;
  bool redist_on_ = false;
  std::vector<PendingClaw> pending_claws_;
  double next_tick_s_ = 0.0;
  std::vector<double> wakeups_;
  std::size_t wakeup_idx_ = 0;

  // Degraded-mode state. effective_budget_ == the facility budget unless a
  // BudgetCut window is active; free_power() is computed against it.
  bool mode_faults_on_ = false;
  DegradedMode mode_ = DegradedMode::kNormal;
  double effective_budget_;
  double applied_factor_ = 1.0;  ///< budget-cut factor currently applied
  bool meters_dark_ = false;
  bool admission_paused_ = false;

  // Journal replay window during recover(): records [replay_cursor_,
  // replay_limit_) are verified against re-derived events before the loop
  // starts appending fresh ones.
  std::size_t replay_cursor_ = 0;
  std::size_t replay_limit_ = 0;
  int records_since_snapshot_ = 0;
  /// True while records [replay_cursor_, replay_limit_) are being verified:
  /// action_obs() is nullptr so replay never double-counts.
  bool replaying_ = false;

  // Live observability: per-job causal ids (empty with tracing off) and the
  // loop-owned telemetry server (null with telemetry_port < 0).
  std::vector<obs::TraceContext> traces_;
  std::unique_ptr<obs::TelemetryServer> telemetry_;
  std::uint32_t publish_tick_ = 0;  ///< throttles steady-state /status pushes
};

/// Facade over QueueEventLoop: validates once, then constructs a fresh
/// single-shot loop per run() call with the current attachments forwarded.
class PowerAwareJobQueue {
 public:
  PowerAwareJobQueue(sim::SimExecutor& executor,
                     core::ClipScheduler& scheduler,
                     QueueOptions options = QueueOptions{});

  /// Run all jobs (submitted at t=0, FCFS order) to completion and report.
  [[nodiscard]] QueueReport run(
      const std::vector<workloads::WorkloadSignature>& jobs);

  /// As above, with per-job placement constraints.
  [[nodiscard]] QueueReport run(const std::vector<QueueJob>& jobs);

  /// Attach an observability session (nullptr detaches): `queue.depth` /
  /// `queue.running` gauges track the event loop, each start attempt emits
  /// a "queue.try_start" span, and per-job waits (simulated seconds, so
  /// deterministic) feed the `queue.job_wait_s` histogram. Fault handling
  /// adds the fault.* / queue.retries / budget.* series of
  /// docs/observability.md.
  void set_observer(obs::ObsSession* obs) { obs_ = obs; }

  /// Attach a fault injector (nullptr detaches; not owned, must outlive the
  /// run). The injector's cap-violation windows are mutated by guard
  /// claw-backs, so attach a fresh injector per run.
  void set_fault_injector(fault::FaultInjector* injector) {
    injector_ = injector;
  }

  /// Attach a flight recorder (nullptr detaches; not owned). The event loop
  /// records, on the simulated-seconds axis: `queue.depth` / `queue.running`
  /// / `budget.free_w` at every scheduling pass, per-node `node<N>.power_w`
  /// / `node<N>.cap_w` steps at job start/finish (and the guard's sampled
  /// true draw under faults), `fault.active` plus a labeled `fault` event
  /// stream for injected events and claw-backs, and a `job` event stream
  /// (start/finish/crash/requeue/fail). With no timeline attached every
  /// hook is one branch and the run is byte-identical to before.
  void set_timeline(obs::Timeline* timeline) { timeline_ = timeline; }

  /// Attach a write-ahead journal (nullptr detaches; not owned) — see
  /// QueueEventLoop::set_journal and runtime/journal.hpp.
  void set_journal(Journal* journal) { journal_ = journal; }

 private:
  sim::SimExecutor* executor_;
  core::ClipScheduler* scheduler_;
  QueueOptions options_;
  obs::ObsSession* obs_ = nullptr;
  fault::FaultInjector* injector_ = nullptr;
  obs::Timeline* timeline_ = nullptr;
  Journal* journal_ = nullptr;
};

/// Reference policy: one job at a time with the whole budget (what a
/// conventional power-bounded site does). Used by the throughput bench.
[[nodiscard]] QueueReport run_serially(
    sim::SimExecutor& executor, core::ClipScheduler& scheduler,
    Watts cluster_budget,
    const std::vector<workloads::WorkloadSignature>& jobs);

}  // namespace clip::runtime
