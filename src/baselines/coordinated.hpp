// The "Coordinated" baseline (paper §V-C) — Ge et al., "The case for
// cross-component power coordination on power bounded systems", ICPP 2016.
//
// Application-aware in two respects: the per-node floor is the application's
// own acceptable-range lower bound (not a fixed 180 W), and the CPU/DRAM
// split follows the power model (the memory domain gets what its measured
// demand needs, the CPU the rest). However it always executes at the
// highest possible concurrency — no thread throttling — which is exactly
// where CLIP's class-aware concurrency control wins (paper observation 4:
// "CLIP defends Coordinated for parabolic applications ... by up to 60%").
#pragma once

#include "baselines/scheduler_iface.hpp"
#include "core/node_config.hpp"
#include "core/profiler.hpp"
#include "sim/executor.hpp"

namespace clip::baselines {

class CoordinatedScheduler final : public PowerScheduler {
 public:
  /// Profiles applications through the same smart-profiler machinery CLIP
  /// uses (one all-core sample is all it needs for the power model).
  explicit CoordinatedScheduler(sim::SimExecutor& executor);

  [[nodiscard]] std::string name() const override { return "Coordinated"; }

  [[nodiscard]] sim::ClusterConfig plan(
      const workloads::WorkloadSignature& app,
      Watts cluster_budget) override;

 private:
  sim::SimExecutor* executor_;
  core::SmartProfiler profiler_;
  core::NodeSelectorOptions selector_options_;
};

}  // namespace clip::baselines
