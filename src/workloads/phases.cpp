#include "workloads/phases.hpp"

#include <cmath>
#include <optional>

#include "util/check.hpp"

namespace clip::workloads {

WorkloadSignature PhasedWorkload::blended() const {
  validate();
  WorkloadSignature blend = phases.front().signature;
  blend.name = name;
  blend.parameters = parameters;
  blend.node_base_time_s = node_base_time_s;
  auto avg = [&](auto field) {
    double acc = 0.0;
    for (const auto& p : phases) acc += p.weight * (p.signature.*field);
    return acc;
  };
  blend.serial_fraction = avg(&WorkloadSignature::serial_fraction);
  blend.memory_boundedness = avg(&WorkloadSignature::memory_boundedness);
  blend.bw_per_core_gbps = avg(&WorkloadSignature::bw_per_core_gbps);
  blend.sync_coeff_s = avg(&WorkloadSignature::sync_coeff_s);
  blend.shared_data_fraction = avg(&WorkloadSignature::shared_data_fraction);
  blend.compute_intensity = avg(&WorkloadSignature::compute_intensity);
  blend.ipc = avg(&WorkloadSignature::ipc);
  blend.icache_pressure = avg(&WorkloadSignature::icache_pressure);
  blend.write_fraction = avg(&WorkloadSignature::write_fraction);
  blend.validate();
  return blend;
}

WorkloadSignature PhasedWorkload::phase_signature(std::size_t index) const {
  validate();
  CLIP_REQUIRE(index < phases.size(), "phase index out of range");
  WorkloadSignature s = phases[index].signature;
  s.name = name + ":" + phases[index].name;
  s.parameters = parameters;
  s.node_base_time_s = node_base_time_s * phases[index].weight;
  s.validate();
  return s;
}

void PhasedWorkload::validate() const {
  CLIP_REQUIRE(!name.empty(), "phased workload needs a name");
  CLIP_REQUIRE(node_base_time_s > 0.0, "base time must be positive");
  CLIP_REQUIRE(phases.size() >= 2, "a phased workload has >= 2 phases");
  double total = 0.0;
  for (const auto& p : phases) {
    CLIP_REQUIRE(p.weight > 0.0, "phase weights must be positive");
    total += p.weight;
  }
  CLIP_REQUIRE(std::fabs(total - 1.0) < 1e-9, "phase weights must sum to 1");
}

namespace {

WorkloadSignature solver_phase(double mem_bound, double bw, double ci,
                               double ipc) {
  WorkloadSignature s;
  s.name = "solver";
  s.serial_fraction = 0.004;
  s.memory_boundedness = mem_bound;
  s.bw_per_core_gbps = bw;
  s.sync_coeff_s = 0.0;
  s.shared_data_fraction = 0.12;
  s.compute_intensity = ci;
  s.ipc = ipc;
  s.icache_pressure = 0.10;
  s.write_fraction = 0.30;
  return s;
}

WorkloadSignature exchange_phase(double bw, double sync) {
  // Boundary exchange: bandwidth-saturated, contended, low IPC — the
  // exch_qbc character that stalls BT-MZ's all-core scalability.
  WorkloadSignature s;
  s.name = "exchange";
  s.serial_fraction = 0.03;
  s.memory_boundedness = 0.85;
  s.bw_per_core_gbps = bw;
  s.sync_coeff_s = sync;
  s.shared_data_fraction = 0.45;
  s.compute_intensity = 0.50;
  s.ipc = 0.8;
  s.icache_pressure = 0.05;
  s.write_fraction = 0.50;
  return s;
}

std::vector<PhasedWorkload> build() {
  std::vector<PhasedWorkload> v;

  // BT-MZ: 80% solver (scales), 20% exch_qbc (saturates + contends).
  v.push_back({.name = "BT-MZ-phased",
               .parameters = "C",
               .node_base_time_s = 340.0,
               .phases = {{"solve", 0.80, solver_phase(0.38, 4.6, 0.88, 2.0)},
                          {"exch_qbc", 0.20, exchange_phase(9.0, 3.0e-4)}}});

  // LU-MZ: 75/25 with a slightly lighter exchange.
  v.push_back({.name = "LU-MZ-phased",
               .parameters = "C",
               .node_base_time_s = 300.0,
               .phases = {{"ssor", 0.75, solver_phase(0.34, 4.0, 0.84, 1.8)},
                          {"exchange", 0.25, exchange_phase(8.0, 2.2e-4)}}});

  // SP-MZ: 70/30 with a heavy, contended exchange — the parabolic driver.
  v.push_back({.name = "SP-MZ-phased",
               .parameters = "C",
               .node_base_time_s = 320.0,
               .phases = {{"solve", 0.70, solver_phase(0.30, 4.2, 0.82, 1.7)},
                          {"exch_qbc", 0.30, exchange_phase(9.5, 4.0e-4)}}});

  // TeaLeaf: CG solve (memory heavy but regular) + halo update (contended).
  v.push_back({.name = "TeaLeaf-phased",
               .parameters = "Tea10.in",
               .node_base_time_s = 280.0,
               .phases = {{"cg_solve", 0.72, solver_phase(0.55, 6.5, 0.70, 1.3)},
                          {"halo", 0.28, exchange_phase(8.5, 3.5e-4)}}});

  for (const auto& p : v) p.validate();
  return v;
}

}  // namespace

const std::vector<PhasedWorkload>& phased_benchmarks() {
  static const std::vector<PhasedWorkload> v = build();
  return v;
}

std::optional<PhasedWorkload> find_phased(const std::string& name) {
  for (const auto& p : phased_benchmarks())
    if (p.name == name) return p;
  return std::nullopt;
}

}  // namespace clip::workloads
