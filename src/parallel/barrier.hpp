// Centralized sense-reversing barrier.
//
// The paper's node-level runtime repeatedly joins OpenMP worker teams at
// phase boundaries; this is the standard low-overhead barrier for a team
// whose size is fixed for the duration of a parallel region. The team size
// is a constructor argument so the throttled pool can build a fresh barrier
// per region when concurrency changes.
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>

#include "util/check.hpp"

// TSan cannot model std::atomic_thread_fence (GCC even rejects it under
// -fsanitize=thread -Werror=tsan), so the spin-pacing fence in
// arrive_and_wait is compiled out there — the acquire load carries the
// synchronization either way.
#if defined(__SANITIZE_THREAD__)
#define CLIP_TSAN_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CLIP_TSAN_ACTIVE 1
#endif
#endif

namespace clip::parallel {

class SenseBarrier {
 public:
  explicit SenseBarrier(std::size_t parties) : parties_(parties) {
    CLIP_REQUIRE(parties > 0, "barrier needs at least one party");
    remaining_.store(parties, std::memory_order_relaxed);
  }

  SenseBarrier(const SenseBarrier&) = delete;
  SenseBarrier& operator=(const SenseBarrier&) = delete;

  /// Block until all parties arrive. Reusable across rounds.
  void arrive_and_wait() {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last arrival: reset the count and flip the sense to release everyone.
      remaining_.store(parties_, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
      while (sense_.load(std::memory_order_acquire) != my_sense) {
        // Spin: regions are short and team sizes small. Yield keeps the
        // single-CPU CI environment live.
#ifndef CLIP_TSAN_ACTIVE
        std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
        // Yield after the pause so oversubscribed hosts make progress.
        sched_yield_();
      }
    }
  }

  [[nodiscard]] std::size_t parties() const { return parties_; }

 private:
  static void sched_yield_() { std::this_thread::yield(); }

  const std::size_t parties_;
  std::atomic<std::size_t> remaining_;
  std::atomic<bool> sense_{false};
};

}  // namespace clip::parallel
