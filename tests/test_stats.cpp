// Unit tests for clip::stats — matrix solve, MLR, piecewise fits, metrics.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/linreg.hpp"
#include "stats/matrix.hpp"
#include "stats/metrics.hpp"
#include "stats/piecewise.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace clip::stats {
namespace {

// ---------------------------------------------------------------- matrix ----

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
}

TEST(Matrix, Transpose) {
  Matrix m(2, 3);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(0, 2) = 3;
  m(1, 0) = 4;
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(t(0, 1), 4.0);
}

TEST(Matrix, MultiplyMatrices) {
  Matrix a(2, 2), b(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  b(0, 0) = 5;
  b(0, 1) = 6;
  b(1, 0) = 7;
  b(1, 1) = 8;
  const Matrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplyDimensionMismatchThrows) {
  Matrix a(2, 3), b(2, 2);
  EXPECT_THROW(a.multiply(b), PreconditionError);
}

TEST(Matrix, MultiplyVector) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  const auto y = a.multiply(std::vector<double>{1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, Identity) {
  const Matrix id = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_DOUBLE_EQ(id(r, c), r == c ? 1.0 : 0.0);
}

TEST(Solve, TwoByTwoSystem) {
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  const auto x = solve_linear_system(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Solve, RequiresPivoting) {
  // Zero on the diagonal forces a row swap.
  Matrix a(2, 2);
  a(0, 0) = 0;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 0;
  const auto x = solve_linear_system(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Solve, SingularMatrixThrows) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;
  EXPECT_THROW(solve_linear_system(a, {1.0, 2.0}), PreconditionError);
}

TEST(Solve, LargerRandomSystemRoundTrips) {
  Rng rng(5);
  const std::size_t n = 8;
  Matrix a(n, n);
  std::vector<double> x_true(n);
  for (std::size_t i = 0; i < n; ++i) {
    x_true[i] = rng.uniform(-2.0, 2.0);
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
    a(i, i) += 4.0;  // diagonally dominant -> well conditioned
  }
  const std::vector<double> b = a.multiply(x_true);
  const auto x = solve_linear_system(a, b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

// ---------------------------------------------------------------- linreg ----

TEST(LinReg, RecoversExactLinearRelation) {
  // y = 3 + 2*x0 - x1, noise-free.
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const double x0 = rng.uniform(0.0, 10.0);
    const double x1 = rng.uniform(-5.0, 5.0);
    x.push_back({x0, x1});
    y.push_back(3.0 + 2.0 * x0 - x1);
  }
  const LinearModel m = fit_linear(x, y);
  for (int i = 0; i < 10; ++i) {
    const double x0 = rng.uniform(0.0, 10.0);
    const double x1 = rng.uniform(-5.0, 5.0);
    EXPECT_NEAR(m.predict({x0, x1}), 3.0 + 2.0 * x0 - x1, 1e-8);
  }
}

TEST(LinReg, WithoutStandardizationAlsoRecovers) {
  std::vector<std::vector<double>> x = {{1.0}, {2.0}, {3.0}, {4.0}};
  std::vector<double> y = {3.0, 5.0, 7.0, 9.0};  // y = 1 + 2x
  LinRegOptions opt;
  opt.standardize = false;
  const LinearModel m = fit_linear(x, y, opt);
  EXPECT_NEAR(m.intercept, 1.0, 1e-9);
  EXPECT_NEAR(m.coefficients[0], 2.0, 1e-9);
}

TEST(LinReg, NoisyDataStillCloseToTruth) {
  Rng rng(11);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 500; ++i) {
    const double x0 = rng.uniform(0.0, 1.0);
    x.push_back({x0});
    y.push_back(4.0 + 1.5 * x0 + rng.normal(0.0, 0.05));
  }
  const LinearModel m = fit_linear(x, y);
  EXPECT_NEAR(m.predict({0.5}), 4.75, 0.05);
}

TEST(LinReg, RidgeShrinksCoefficients) {
  std::vector<std::vector<double>> x = {{1.0}, {2.0}, {3.0}, {4.0}};
  std::vector<double> y = {2.0, 4.0, 6.0, 8.0};
  LinRegOptions plain;
  plain.standardize = false;
  LinRegOptions ridge;
  ridge.standardize = false;
  ridge.ridge_lambda = 10.0;
  const double coef_plain =
      fit_linear(x, y, plain).coefficients[0];
  const double coef_ridge =
      fit_linear(x, y, ridge).coefficients[0];
  EXPECT_LT(std::fabs(coef_ridge), std::fabs(coef_plain));
}

TEST(LinReg, ConstantFeatureColumnIsHarmless) {
  // With standardization a zero-variance column maps to zero and cannot
  // destabilize the fit.
  std::vector<std::vector<double>> x = {
      {1.0, 5.0}, {2.0, 5.0}, {3.0, 5.0}, {4.0, 5.0}, {5.0, 5.0}};
  std::vector<double> y = {2.0, 4.0, 6.0, 8.0, 10.0};
  const LinearModel m = fit_linear(x, y, {.ridge_lambda = 0.01});
  EXPECT_NEAR(m.predict({3.0, 5.0}), 6.0, 1e-6);
}

TEST(LinReg, UnderdeterminedWithoutRidgeThrows) {
  std::vector<std::vector<double>> x = {{1.0, 2.0}, {2.0, 1.0}};
  std::vector<double> y = {1.0, 2.0};
  EXPECT_THROW(fit_linear(x, y, {.ridge_lambda = 0.0}), PreconditionError);
}

TEST(LinReg, UnderdeterminedWithRidgeSucceeds) {
  std::vector<std::vector<double>> x = {{1.0, 2.0}, {2.0, 1.0}};
  std::vector<double> y = {1.0, 2.0};
  EXPECT_NO_THROW(fit_linear(x, y, {.ridge_lambda = 1.0}));
}

TEST(LinReg, ShapeMismatchThrows) {
  EXPECT_THROW(fit_linear({{1.0}}, {1.0, 2.0}), PreconditionError);
  EXPECT_THROW(fit_linear({}, {}), PreconditionError);
}

TEST(LinReg, PredictWrongWidthThrows) {
  const LinearModel m =
      fit_linear({{1.0}, {2.0}, {3.0}}, {1.0, 2.0, 3.0});
  EXPECT_THROW((void)m.predict({1.0, 2.0}), PreconditionError);
}

TEST(Standardizer, ZeroMeanUnitVariance) {
  std::vector<std::vector<double>> x = {{10.0}, {20.0}, {30.0}};
  const Standardizer s = Standardizer::fit(x);
  EXPECT_NEAR(s.apply({20.0})[0], 0.0, 1e-12);
  const double hi = s.apply({30.0})[0];
  const double lo = s.apply({10.0})[0];
  EXPECT_NEAR(hi, -lo, 1e-12);
  EXPECT_GT(hi, 0.0);
}

// -------------------------------------------------------------- piecewise ----

TEST(Piecewise, SegmentFitExactLine) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y = {3, 5, 7, 9};
  const SegmentFit f = fit_segment(x, y, 0, 4);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.sse, 0.0, 1e-12);
}

TEST(Piecewise, SegmentFitConstantXFallsBackToMean) {
  std::vector<double> x = {2, 2, 2};
  std::vector<double> y = {1, 2, 3};
  const SegmentFit f = fit_segment(x, y, 0, 3);
  EXPECT_DOUBLE_EQ(f.slope, 0.0);
  EXPECT_NEAR(f.intercept, 2.0, 1e-12);
}

TEST(Piecewise, RecoversKnownBreakpoint) {
  // y = x for x<=10, y = 10 + 0.2*(x-10) beyond.
  std::vector<double> x, y;
  for (int i = 1; i <= 24; ++i) {
    x.push_back(i);
    y.push_back(i <= 10 ? i : 10.0 + 0.2 * (i - 10));
  }
  const PiecewiseLinearModel m = fit_piecewise_linear(x, y);
  EXPECT_NEAR(m.breakpoint, 10.0, 1.0);
  EXPECT_NEAR(m.slope1, 1.0, 0.05);
  EXPECT_NEAR(m.slope2, 0.2, 0.05);
}

TEST(Piecewise, RecoversParabolicPeakShape) {
  // Rising then falling: breakpoint should sit near the peak at 12.
  std::vector<double> x, y;
  for (int i = 2; i <= 24; i += 2) {
    x.push_back(i);
    y.push_back(i <= 12 ? i : 12.0 - 0.5 * (i - 12));
  }
  const PiecewiseLinearModel m = fit_piecewise_linear(x, y);
  EXPECT_NEAR(m.breakpoint, 12.0, 2.0);
  EXPECT_GT(m.slope1, 0.0);
  EXPECT_LT(m.slope2, 0.0);
}

TEST(Piecewise, PredictUsesCorrectSegment) {
  PiecewiseLinearModel m;
  m.breakpoint = 10.0;
  m.slope1 = 1.0;
  m.intercept1 = 0.0;
  m.slope2 = 0.0;
  m.intercept2 = 10.0;
  EXPECT_DOUBLE_EQ(m.predict(5.0), 5.0);
  EXPECT_DOUBLE_EQ(m.predict(20.0), 10.0);
  EXPECT_DOUBLE_EQ(m.predict(10.0), 10.0);  // boundary -> first segment
}

TEST(Piecewise, UnsortedInputHandled) {
  std::vector<double> x = {4, 1, 3, 2, 6, 5, 8, 7};
  std::vector<double> y;
  for (double xi : x) y.push_back(xi <= 4 ? xi : 4.0 + 0.1 * (xi - 4));
  const PiecewiseLinearModel m = fit_piecewise_linear(x, y);
  EXPECT_NEAR(m.breakpoint, 4.0, 1.5);
}

TEST(Piecewise, TooFewSamplesThrows) {
  EXPECT_THROW((void)fit_piecewise_linear({1, 2, 3}, {1, 2, 3}),
               PreconditionError);
}

TEST(Piecewise, SizeMismatchThrows) {
  EXPECT_THROW((void)fit_piecewise_linear({1, 2, 3, 4}, {1, 2, 3}),
               PreconditionError);
}

// ---------------------------------------------------------------- metrics ----

TEST(Metrics, MaeBasic) {
  EXPECT_DOUBLE_EQ(mean_absolute_error({1, 2, 3}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(mean_absolute_error({1, 2, 3}, {2, 1, 4}), 1.0);
}

TEST(Metrics, MapeSkipsZeroTruth) {
  EXPECT_NEAR(mean_absolute_percentage_error({0, 10}, {5, 11}), 0.1,
              1e-12);
}

TEST(Metrics, MapeAllZeroTruthThrows) {
  EXPECT_THROW((void)mean_absolute_percentage_error({0.0}, {1.0}),
               PreconditionError);
}

TEST(Metrics, R2PerfectAndMeanPredictor) {
  EXPECT_DOUBLE_EQ(r_squared({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_NEAR(r_squared({1, 2, 3}, {2, 2, 2}), 0.0, 1e-12);
}

TEST(Metrics, RmseBasic) {
  EXPECT_NEAR(rmse({0, 0}, {3, 4}), std::sqrt(12.5), 1e-12);
}

TEST(Metrics, SizeValidation) {
  EXPECT_THROW((void)mean_absolute_error({}, {}), PreconditionError);
  EXPECT_THROW((void)r_squared({1.0}, {1.0, 2.0}), PreconditionError);
}

}  // namespace
}  // namespace clip::stats
