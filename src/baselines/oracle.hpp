// Oracle: exhaustive configuration search on the exact simulator.
//
// The paper validates CLIP as "close to the optimal solution" by exhaustive
// search (and uses exhaustive search for the ground-truth inflection points
// of Fig. 7). The oracle enumerates node count × even thread counts ×
// placement × memory power level, splits each node budget between the
// domains according to the level's worst-case draw, and returns the
// configuration with the smallest *exact* (noise-free) execution time.
//
// It is deliberately outside the CLIP framework: it peeks at ground truth
// and costs thousands of executions per (application, budget) pair — the
// paper's argument for CLIP is getting within a few percent of this with at
// most three profiles. Because that brute force dominates every comparison
// bench, the search engine here is built for speed without changing the
// answer (docs/performance.md):
//
//  * the candidate grid can fan out across a clip::parallel::ThreadPool
//    (`set_pool`); every evaluation is an exact run, so the winner is
//    order-independent and selected by a deterministic serial-order scan;
//  * dominated cap grids are pruned: one uncapped run per (nodes, threads,
//    affinity, level) combo lower-bounds every capped point of that combo
//    (execution time is monotone non-increasing in either cap), so a combo
//    whose bound cannot strictly beat the incumbent is skipped wholesale;
//  * each combo's cap grid is evaluated as one SimExecutor::run_batch
//    frontier (the caps are the only thing varying under a shared
//    (workload, placement) prefix), and the per-level grid is deduplicated
//    (the demand-tight point often coincides with a grid point);
//  * the uncapped bound runs are budget-independent, so the scheduler
//    memoizes them per workload across plan() calls — a budget sweep pays
//    for each combo's bound exactly once (last_search_cost still counts
//    every bound a search *requests*, memoized or not, so reported
//    evaluation counts are sweep-order independent).
#pragma once

#include <array>
#include <atomic>
#include <map>
#include <mutex>
#include <string>

#include "baselines/scheduler_iface.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/executor.hpp"

namespace clip::baselines {

struct OracleOptions {
  /// Lower-bound pruning of dominated cap grids. Never changes the optimal
  /// *time*; on exact ties between configurations the reported plan may
  /// differ from the unpruned scan (both are optimal).
  bool prune = true;
};

class OracleScheduler final : public PowerScheduler {
 public:
  explicit OracleScheduler(sim::SimExecutor& executor,
                           OracleOptions options = OracleOptions{})
      : executor_(&executor), options_(options) {}

  [[nodiscard]] std::string name() const override { return "Oracle"; }

  /// Fan the candidate grid out across `pool` (nullptr = serial). The pool
  /// is borrowed, not owned, and must outlive the scheduler's plan() calls.
  void set_pool(parallel::ThreadPool* pool) { pool_ = pool; }

  void set_options(OracleOptions options) { options_ = options; }

  [[nodiscard]] sim::ClusterConfig plan(
      const workloads::WorkloadSignature& app,
      Watts cluster_budget) override;

  /// Number of simulator executions the last plan() consumed (including
  /// pruning-bound runs) — the search cost CLIP's ≤3-sample profiling
  /// avoids. Atomic because the grid evaluates concurrently.
  [[nodiscard]] int last_search_cost() const {
    return last_search_cost_.load(std::memory_order_relaxed);
  }

 private:
  /// One pruning-bound combo: the knob tuple the uncapped time depends on.
  using BoundKey = std::array<int, 4>;  ///< nodes, threads, affinity, level

  sim::SimExecutor* executor_;
  OracleOptions options_;
  parallel::ThreadPool* pool_ = nullptr;
  std::atomic<int> last_search_cost_{0};
  /// Uncapped bound times, workload (canonical encoded bytes) → combo →
  /// exact time. Bounds are budget-independent and the exact model is pure,
  /// so memoized values are bit-identical to recomputed ones. Guarded by
  /// `bound_memo_mu_` (bounds evaluate concurrently under set_pool).
  std::mutex bound_memo_mu_;
  std::map<std::string, std::map<BoundKey, double>> bound_memo_;
};

}  // namespace clip::baselines
