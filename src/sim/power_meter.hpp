// Measurement-noise layer — the "power meter reader" of the paper's system
// interface helper tools (§IV-B4).
//
// Real RAPL energy counters and wall-socket meters read with a small
// sampling error; the profiler consumes *measured* values, so the noise
// flows into CLIP's models exactly as it would on hardware. Noise is
// multiplicative, seeded, and defaults to ±0.5% (1 sigma) for power and
// ±0.3% for time.
#pragma once

#include <cstdint>

#include "sim/config.hpp"
#include "util/rng.hpp"

namespace clip::obs {
class Timeline;
}

namespace clip::sim {

struct MeterOptions {
  double power_noise_sigma = 0.005;
  double time_noise_sigma = 0.003;
  std::uint64_t seed = 7;
  bool enabled = true;
};

/// A programmed meter malfunction layered on top of the noise model: while
/// active, power reads return a corrupted value instead of the (noisy)
/// truth. Defaults to kNone — a strict no-op — so fault-free behaviour is
/// byte-identical. The fault-injection subsystem (src/fault) programs these
/// from a FaultPlan's timed windows.
struct MeterFaultState {
  enum class Kind { kNone, kStuckAt, kDropout, kSpike };
  Kind kind = Kind::kNone;
  double value = 0.0;  ///< stuck-at watts, or spike multiplier
};

/// The corruption a faulty meter applies to one power reading.
[[nodiscard]] double corrupt_reading(const MeterFaultState& fault,
                                     double truth_w);

class PowerMeter {
 public:
  using Options = MeterOptions;

  explicit PowerMeter(MeterOptions options = MeterOptions{})
      : options_(options), rng_(options.seed) {}

  /// Apply measurement noise (and any programmed fault) to a ground-truth
  /// measurement in place.
  void observe(Measurement& m);

  /// Noisy scalar reads.
  [[nodiscard]] Watts read_power(Watts truth);
  [[nodiscard]] Seconds read_time(Seconds truth);

  /// Program (or, with kNone, clear) the meter's fault layer.
  void set_fault(MeterFaultState fault) { fault_ = fault; }
  [[nodiscard]] const MeterFaultState& fault() const { return fault_; }

  /// Attach a flight recorder (nullptr detaches): each observe() appends
  /// the measured total draw to the `meter.power_w` series at the sample
  /// time set via set_sample_time(). Detached cost is one branch.
  void set_timeline(obs::Timeline* timeline) { timeline_ = timeline; }

  /// Simulated-seconds timestamp the next observe() records at. Must be
  /// non-decreasing across calls (timeline series are monotone).
  void set_sample_time(double t_s) { sample_time_s_ = t_s; }

 private:
  [[nodiscard]] double jitter(double sigma);

  MeterOptions options_;
  Rng rng_;
  MeterFaultState fault_;
  obs::Timeline* timeline_ = nullptr;
  double sample_time_s_ = 0.0;
};

}  // namespace clip::sim
