// Fixture: suppression hygiene. One valid same-line suppression, one valid
// standalone-comment suppression, one reasonless suppression (must be
// rejected), one naming an unknown rule, and one that never matches.
#include <chrono>

double ok_same_line() {
  auto t = std::chrono::steady_clock::now();  // clip-lint: allow(D1) fixture exercises the same-line form
  return static_cast<double>(t.time_since_epoch().count());
}

double ok_next_line() {
  // clip-lint: allow(D1) fixture exercises the standalone-comment form
  auto t = std::chrono::system_clock::now();
  return static_cast<double>(t.time_since_epoch().count());
}

double bad_no_reason() {
  auto t = std::chrono::steady_clock::now();  // clip-lint: allow(D1)
  return static_cast<double>(t.time_since_epoch().count());
}

// clip-lint: allow(Z9) unknown rule id must be rejected
int unknown_rule() { return 0; }

// clip-lint: allow(D4) nothing on the next line draws randomness
int unused_suppression() { return 1; }
