// Chrome-trace-format JSON export.
//
// Emits the "JSON Array Format" of the Trace Event specification: a top-level
// object with a `traceEvents` array of complete-duration events ("ph":"X",
// which need no begin/end matching by the viewer) and counter events
// ("ph":"C"). The output loads directly in Perfetto (https://ui.perfetto.dev)
// and in chrome://tracing. Nesting is implied by timestamp containment on a
// (pid, tid) track, so span records carry no explicit parent pointers.
//
// Serialization is deterministic: field order is fixed and timestamps are
// printed with fixed precision, so a FakeClock yields byte-identical output
// (asserted by test_obs).
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "obs/sink.hpp"

namespace clip::obs {

/// Escape a string for inclusion inside JSON double quotes.
[[nodiscard]] std::string json_escape(std::string_view s);

/// One complete-duration event object (no trailing newline).
[[nodiscard]] std::string span_to_json(const SpanRecord& span);

/// One counter event object (no trailing newline).
[[nodiscard]] std::string counter_to_json(const CounterSample& sample);

/// Regroup spans so each causal trace owns one track: spans carrying a
/// "trace_id" arg (runtime/queue.hpp tracing, obs/trace_context.hpp) move
/// to a tid allocated per distinct id in first-appearance order, above the
/// largest thread tid — so one job's queue/requeue/launcher spans nest
/// together in Perfetto instead of interleaving by thread. Spans without
/// the arg keep their thread track. Deterministic for a fixed span list.
[[nodiscard]] std::vector<SpanRecord> group_spans_by_trace(
    std::vector<SpanRecord> spans);

/// The full trace document: {"traceEvents":[...],"displayTimeUnit":"ms"}.
[[nodiscard]] std::string chrome_trace_json(
    const std::vector<SpanRecord>& spans,
    const std::vector<CounterSample>& counters = {});

/// Write the trace document to `path`.
void write_chrome_trace(const std::filesystem::path& path,
                        const std::vector<SpanRecord>& spans,
                        const std::vector<CounterSample>& counters = {});

}  // namespace clip::obs
