#include "obs/alerts.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "obs/chrome_trace.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace clip::obs {

namespace {

/// End of the recorded run: the latest timestamp on any sample series or
/// event stream. Rule windows run [0, end].
double timeline_end(const Timeline& tl) {
  double end = 0.0;
  for (const auto& name : tl.series_names()) {
    const auto s = tl.summary(name);
    if (s.count > 0) end = std::max(end, s.last_t_s);
    const auto evs = tl.events(name);
    if (!evs.empty()) end = std::max(end, evs.back().t_s);
  }
  return end;
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

double parse_number(const std::string& s, const std::string& context) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  CLIP_REQUIRE(end != s.c_str() && *end == '\0' && std::isfinite(v),
               context + ": bad number '" + s + "'");
  return v;
}

bool mode_label_matches(const std::string& label, const std::string& prefix) {
  if (!prefix.empty()) return starts_with(label, prefix);
  return starts_with(label, "METER_BLACKOUT") ||
         starts_with(label, "BUDGET_BROWNOUT");
}

/// Nearest-rank quantile of the series' recorded values.
double nearest_rank(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const auto n = values.size();
  auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(n)));
  rank = std::min(std::max<std::size_t>(rank, 1), n);
  return values[rank - 1];
}

}  // namespace

const char* to_string(AlertSeverity severity) {
  switch (severity) {
    case AlertSeverity::kInfo:
      return "info";
    case AlertSeverity::kWarning:
      return "warning";
    case AlertSeverity::kCritical:
      return "critical";
  }
  return "?";
}

void AlertRule::validate() const {
  CLIP_REQUIRE(!name.empty(), "alert rule needs a name");
  CLIP_REQUIRE(name.find_first_of(" \t\n\"") == std::string::npos,
               "alert rule name '" + name + "' must not contain whitespace");
  CLIP_REQUIRE(std::isfinite(threshold),
               "alert rule '" + name + "': threshold must be finite");
  if (kind == AlertKind::kModeTransition) {
    CLIP_REQUIRE(!series.empty(),
                 "alert rule '" + name + "': mode rules need a stream");
  } else {
    CLIP_REQUIRE(!series.empty(),
                 "alert rule '" + name + "' needs a series");
  }
  if (kind == AlertKind::kQuantileAbove)
    CLIP_REQUIRE(level > 0.0 && level <= 1.0,
                 "alert rule '" + name + "': quantile must be in (0, 1]");
  if (kind == AlertKind::kTimeAbove)
    CLIP_REQUIRE(std::isfinite(level),
                 "alert rule '" + name + "': level must be finite");
}

std::string AlertRule::expression() const {
  std::string expr;
  switch (kind) {
    case AlertKind::kValueAbove:
      expr = "value(" + series + ")";
      break;
    case AlertKind::kTimeAbove:
      expr = "time_above(" + series + ", " + format_exact(level) + ")";
      break;
    case AlertKind::kQuantileAbove:
      expr = "p" + format_exact(level * 100.0) + "(" + series + ")";
      break;
    case AlertKind::kEventCount:
      expr = "events(" + series + (prefix.empty() ? "" : ", " + prefix) + ")";
      break;
    case AlertKind::kModeTransition:
      expr = "mode(" + prefix + ")";
      break;
  }
  return expr + " > " + format_exact(threshold);
}

AlertEngine::AlertEngine(std::vector<AlertRule> rules)
    : rules_(std::move(rules)) {
  for (const auto& r : rules_) r.validate();
}

void AlertEngine::add_rule(AlertRule rule) {
  rule.validate();
  rules_.push_back(std::move(rule));
}

std::vector<AlertOutcome> AlertEngine::evaluate(
    const Timeline& timeline, const MetricsRegistry* metrics) const {
  const double end_s = timeline_end(timeline);
  std::vector<AlertOutcome> outcomes;
  outcomes.reserve(rules_.size());
  for (const auto& rule : rules_) {
    AlertOutcome out;
    out.rule = rule;
    out.at_s = end_s;
    switch (rule.kind) {
      case AlertKind::kValueAbove: {
        const auto pts = timeline.samples(rule.series);
        if (pts.empty()) {
          out.detail = "no samples";
          break;
        }
        out.observed = pts.back().value;
        out.fired = out.observed > rule.threshold;
        for (const auto& p : pts) {
          if (p.value > rule.threshold) {
            out.at_s = p.t_s;
            break;
          }
        }
        out.detail = "value=" + format_exact(out.observed);
        break;
      }
      case AlertKind::kTimeAbove: {
        out.observed =
            timeline.time_above(rule.series, rule.level, 0.0, end_s);
        out.fired = out.observed > rule.threshold;
        if (out.fired) {
          // The instant the cumulative time above `level` crossed the
          // threshold, found by replaying the step function's segments.
          const auto pts = timeline.samples(rule.series);
          double acc = 0.0;
          for (std::size_t i = 0; i < pts.size(); ++i) {
            if (!(pts[i].value > rule.level)) continue;
            const double lo = std::max(pts[i].t_s, 0.0);
            const double hi = std::min(
                i + 1 < pts.size() ? pts[i + 1].t_s : end_s, end_s);
            if (hi <= lo) continue;
            if (acc + (hi - lo) > rule.threshold) {
              out.at_s = lo + std::max(rule.threshold - acc, 0.0);
              break;
            }
            acc += hi - lo;
          }
        }
        out.detail = "time_above_s=" + format_exact(out.observed);
        break;
      }
      case AlertKind::kQuantileAbove: {
        const auto pts = timeline.samples(rule.series);
        if (!pts.empty()) {
          std::vector<double> values;
          values.reserve(pts.size());
          for (const auto& p : pts) values.push_back(p.value);
          out.observed = nearest_rank(std::move(values), rule.level);
          out.at_s = pts.back().t_s;
        } else if (metrics != nullptr) {
          const Histogram* h = metrics->find_histogram(rule.series);
          if (h == nullptr || h->count() == 0) {
            out.detail = "no samples";
            break;
          }
          out.observed = h->quantile(rule.level);
        } else {
          out.detail = "no samples";
          break;
        }
        out.fired = out.observed > rule.threshold;
        out.detail = "p" + format_exact(rule.level * 100.0) + "=" +
                     format_exact(out.observed);
        break;
      }
      case AlertKind::kEventCount:
      case AlertKind::kModeTransition: {
        const auto evs = timeline.events(rule.series);
        std::uint64_t n = 0;
        for (const auto& e : evs) {
          const bool match =
              rule.kind == AlertKind::kModeTransition
                  ? mode_label_matches(e.label, rule.prefix)
                  : (rule.prefix.empty() ||
                     starts_with(e.label, rule.prefix));
          if (!match) continue;
          ++n;
          if (static_cast<double>(n) > rule.threshold && !out.fired) {
            out.fired = true;
            out.at_s = e.t_s;
          }
        }
        out.observed = static_cast<double>(n);
        out.detail = (rule.kind == AlertKind::kModeTransition
                          ? "transitions="
                          : "events=") +
                     format_exact(out.observed);
        break;
      }
    }
    outcomes.push_back(std::move(out));
  }
  return outcomes;
}

std::vector<AlertOutcome> AlertEngine::evaluate_and_record(
    Timeline& timeline, const MetricsRegistry* metrics) const {
  auto outcomes = evaluate(timeline, metrics);
  std::vector<const AlertOutcome*> fired;
  for (const auto& o : outcomes)
    if (o.fired) fired.push_back(&o);
  std::sort(fired.begin(), fired.end(),
            [](const AlertOutcome* a, const AlertOutcome* b) {
              if (a->at_s != b->at_s) return a->at_s < b->at_s;
              return a->rule.name < b->rule.name;
            });
  double last_t = timeline_end(timeline);
  for (const AlertOutcome* o : fired) {
    timeline.event("alert", o->at_s,
                   std::string(to_string(o->rule.severity)) + " " +
                       o->rule.name + " " + o->detail);
    last_t = std::max(last_t, o->at_s);
  }
  timeline.record("alert.firing", last_t,
                  static_cast<double>(fired.size()));
  return outcomes;
}

std::vector<AlertRule> AlertEngine::default_rules() {
  // The built-in SLO catalog for power-aware queue runs. Series and event
  // labels match what QueueEventLoop records (docs/observability.md).
  std::vector<AlertRule> rules;
  auto add = [&rules](std::string name, AlertKind kind, AlertSeverity sev,
                      std::string series, double level, std::string prefix,
                      double threshold) {
    AlertRule r;
    r.name = std::move(name);
    r.kind = kind;
    r.severity = sev;
    r.series = std::move(series);
    r.level = level;
    r.prefix = std::move(prefix);
    r.threshold = threshold;
    rules.push_back(std::move(r));
  };
  add("budget-violation", AlertKind::kValueAbove, AlertSeverity::kCritical,
      "budget.violation_s", 0.0, "", 0.0);
  add("queue-stranded", AlertKind::kValueAbove, AlertSeverity::kCritical,
      "queue.depth", 0.0, "", 0.0);
  add("jobs-failed", AlertKind::kEventCount, AlertSeverity::kCritical,
      "job", 0.0, "fail ", 0.0);
  add("journal-gap", AlertKind::kEventCount, AlertSeverity::kCritical,
      "journal", 0.0, "gap", 0.0);
  add("node-crash", AlertKind::kEventCount, AlertSeverity::kWarning,
      "fault", 0.0, "crash", 0.0);
  add("meter-blackout", AlertKind::kModeTransition, AlertSeverity::kWarning,
      "mode", 0.0, "METER_BLACKOUT", 0.0);
  add("budget-brownout", AlertKind::kModeTransition, AlertSeverity::kWarning,
      "mode", 0.0, "BUDGET_BROWNOUT", 0.0);
  add("slow-decisions", AlertKind::kQuantileAbove, AlertSeverity::kWarning,
      "queue.decision_latency_us", 0.99, "", 100000.0);
  for (const auto& r : rules) r.validate();
  return rules;
}

std::vector<AlertRule> AlertEngine::parse_rules(const std::string& text,
                                                const std::string& context) {
  std::vector<AlertRule> rules;
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string where = context + ":" + std::to_string(line_no);
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    const std::string line = trim(raw);
    if (line.empty()) continue;

    // <name> <severity> <expr> > <threshold>
    std::istringstream fields(line);
    AlertRule rule;
    std::string severity;
    fields >> rule.name >> severity;
    CLIP_REQUIRE(fields.good(), where + ": expected 'name severity expr'");
    if (severity == "info") {
      rule.severity = AlertSeverity::kInfo;
    } else if (severity == "warning" || severity == "warn") {
      rule.severity = AlertSeverity::kWarning;
    } else if (severity == "critical") {
      rule.severity = AlertSeverity::kCritical;
    } else {
      CLIP_REQUIRE(false, where + ": unknown severity '" + severity +
                              "' (info|warning|critical)");
    }
    std::string rest;
    std::getline(fields, rest);
    const auto gt = rest.find('>');
    CLIP_REQUIRE(gt != std::string::npos,
                 where + ": expected '<expr> > <threshold>'");
    const std::string expr = trim(rest.substr(0, gt));
    rule.threshold = parse_number(trim(rest.substr(gt + 1)), where);

    const auto open = expr.find('(');
    CLIP_REQUIRE(open != std::string::npos && expr.back() == ')',
                 where + ": expected a function expression, got '" + expr +
                     "'");
    const std::string fn = trim(expr.substr(0, open));
    std::vector<std::string> args;
    const std::string inner =
        expr.substr(open + 1, expr.size() - open - 2);
    if (!trim(inner).empty())
      for (const auto& a : split(inner, ',')) args.push_back(trim(a));

    if (fn == "value") {
      CLIP_REQUIRE(args.size() == 1, where + ": value(<series>)");
      rule.kind = AlertKind::kValueAbove;
      rule.series = args[0];
    } else if (fn == "time_above") {
      CLIP_REQUIRE(args.size() == 2,
                   where + ": time_above(<series>, <level>)");
      rule.kind = AlertKind::kTimeAbove;
      rule.series = args[0];
      rule.level = parse_number(args[1], where);
    } else if (fn.size() > 1 && fn[0] == 'p' &&
               fn.find_first_not_of("0123456789", 1) == std::string::npos) {
      CLIP_REQUIRE(args.size() == 1, where + ": p<Q>(<series>)");
      rule.kind = AlertKind::kQuantileAbove;
      rule.series = args[0];
      rule.level = parse_number(fn.substr(1), where) / 100.0;
    } else if (fn == "events") {
      CLIP_REQUIRE(args.size() == 1 || args.size() == 2,
                   where + ": events(<stream>[, <prefix>])");
      rule.kind = AlertKind::kEventCount;
      rule.series = args[0];
      if (args.size() == 2) rule.prefix = args[1];
    } else if (fn == "mode") {
      CLIP_REQUIRE(args.size() <= 1, where + ": mode([<state-prefix>])");
      rule.kind = AlertKind::kModeTransition;
      rule.series = "mode";
      if (!args.empty()) rule.prefix = args[0];
    } else {
      CLIP_REQUIRE(false, where + ": unknown rule function '" + fn + "'");
    }
    rule.validate();
    rules.push_back(std::move(rule));
  }
  return rules;
}

std::string AlertEngine::render_table(
    const std::vector<AlertOutcome>& outcomes) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"ALERT", "SEVERITY", "FIRED", "OBSERVED", "AT(s)", "RULE"});
  for (const auto& o : outcomes)
    rows.push_back({o.rule.name, to_string(o.rule.severity),
                    o.fired ? "FIRED" : "ok", format_exact(o.observed),
                    format_exact(o.at_s), o.rule.expression()});
  std::vector<std::size_t> width(rows[0].size(), 0);
  for (const auto& row : rows)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  std::ostringstream out;
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size())
        out << std::string(width[c] - row[c].size() + 2, ' ');
    }
    out << '\n';
  }
  return out.str();
}

std::string AlertEngine::render_json(
    const std::vector<AlertOutcome>& outcomes) {
  std::ostringstream out;
  int fired = 0;
  out << "{\n  \"alerts\": [\n";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const auto& o = outcomes[i];
    if (o.fired) ++fired;
    out << "    {\"name\":\"" << json_escape(o.rule.name)
        << "\",\"severity\":\"" << to_string(o.rule.severity)
        << "\",\"rule\":\"" << json_escape(o.rule.expression())
        << "\",\"fired\":" << (o.fired ? "true" : "false")
        << ",\"observed\":" << format_exact(o.observed)
        << ",\"at_s\":" << format_exact(o.at_s) << ",\"detail\":\""
        << json_escape(o.detail) << "\"}"
        << (i + 1 < outcomes.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"fired\": " << fired << "\n}\n";
  return out.str();
}

int AlertEngine::exit_code(const std::vector<AlertOutcome>& outcomes) {
  for (const auto& o : outcomes)
    if (o.fired) return 1;
  return 0;
}

}  // namespace clip::obs
