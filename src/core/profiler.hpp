// SmartProfiler — paper §IV-B1.
//
// Gathers everything CLIP needs about an unknown application with at most
// three short sample-configuration executions on one node:
//   1. all cores, full power, scatter placement. The measured DRAM traffic
//      and remote-access intensity decide the placement preference used for
//      the remaining profiles ("distinguish mapping preference ... and
//      determine the core affinity for the half-core profile").
//   2. half of the cores with that placement. The half/all performance
//      ratio classifies the scalability trend.
//   3. for non-linear classes only: a validation run at the concurrency the
//      inflection predictor suggests, refining the performance model.
//
// Profiling executes a truncated problem ("a few iterations ... compared to
// a full run, which is usually hundreds or thousands of iterations"): we run
// `profile_fraction` of the workload and scale times back up.
#pragma once

#include <functional>

#include "core/profile.hpp"
#include "obs/session.hpp"
#include "sim/executor.hpp"
#include "workloads/signature.hpp"

namespace clip::core {

struct ProfilerOptions {
  double profile_fraction = 0.05;  ///< share of the full run per sample
  double scatter_bw_threshold = 0.35;  ///< memory intensity above which the
                                       ///< profiler keeps scatter placement
};

class SmartProfiler {
 public:
  SmartProfiler(sim::SimExecutor& executor,
                ProfilerOptions options = ProfilerOptions{});

  /// Steps 1 and 2 (always executed). The returned ProfileData has no
  /// validation sample yet; add one with `validate_at` when the predictor
  /// proposes a concurrency.
  [[nodiscard]] ProfileData profile(const workloads::WorkloadSignature& w);

  /// Step 3: run the sample configuration at `threads` and attach it.
  void validate_at(const workloads::WorkloadSignature& w,
                   ProfileData& profile, int threads);

  [[nodiscard]] sim::SimExecutor& executor() { return *executor_; }

  /// Attach an observability session (nullptr detaches): one
  /// "profiler.sample" span and a `profiler.samples` count per sample
  /// configuration executed.
  void set_observer(obs::ObsSession* obs) { obs_ = obs; }

 private:
  [[nodiscard]] SampleProfile run_sample(
      const workloads::WorkloadSignature& w, int threads,
      parallel::AffinityPolicy affinity);

  sim::SimExecutor* executor_;
  ProfilerOptions options_;
  obs::ObsSession* obs_ = nullptr;
};

}  // namespace clip::core
