#include "baselines/oracle.hpp"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <numeric>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "util/check.hpp"

namespace clip::baselines {

namespace {

/// One (nodes, threads, affinity, level) combination with its feasible,
/// deduplicated DRAM-cap grid. `base` carries the knob settings with the
/// caps left at their unbounded defaults — which is exactly the
/// configuration whose exact time lower-bounds every capped grid point
/// (time is monotone non-increasing in either cap).
struct GridCombo {
  sim::ClusterConfig base;
  std::vector<double> mem_caps;  ///< feasible caps, serial grid order
  double node_share = 0.0;
};

/// Atomic running minimum (relaxed; used only to tighten pruning — the
/// final winner comes from a deterministic serial-order scan).
void update_min(std::atomic<double>& best, double v) {
  double cur = best.load(std::memory_order_relaxed);
  while (v < cur &&
         !best.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

sim::ClusterConfig OracleScheduler::plan(
    const workloads::WorkloadSignature& app, Watts cluster_budget) {
  app.validate();
  CLIP_REQUIRE(cluster_budget.value() > 0.0, "budget must be positive");
  const auto& spec = executor_->spec();
  const int all_cores = spec.shape.total_cores();

  std::vector<int> node_counts;
  if (app.has_predefined_process_counts) {
    for (int n = 1; n <= spec.nodes; n *= 2) node_counts.push_back(n);
  } else {
    for (int n = 1; n <= spec.nodes; ++n) node_counts.push_back(n);
  }

  last_search_cost_.store(0, std::memory_order_relaxed);

  // ---- materialize the candidate grid in canonical (serial) order --------
  std::vector<GridCombo> combos;
  for (int nodes : node_counts) {
    const double node_share = cluster_budget.value() / nodes;
    for (int threads = 2; threads <= all_cores; threads += 2) {
      for (parallel::AffinityPolicy affinity :
           {parallel::AffinityPolicy::kCompact,
            parallel::AffinityPolicy::kScatter}) {
        const parallel::Placement placement =
            parallel::place_threads(spec.shape, threads, affinity);
        const int active = placement.active_sockets();
        const int parked = spec.shape.sockets - active;
        for (sim::MemPowerLevel level : sim::kAllMemLevels) {
          const double base_w =
              active * spec.mem_base_w_per_socket +
              parked * spec.mem_parked_w_per_socket;
          const double level_bw =
              active * spec.socket_bw_gbps * sim::bw_fraction(level);
          // Two DRAM budgets per level: the worst-case draw (full level
          // bandwidth) and a demand-tight budget — the oracle may peek at
          // the workload's true per-core demand, which is the whole point
          // of being an oracle. The tight budget frees watts for the CPU.
          const double demand_bw =
              threads * app.bw_per_core_gbps;  // at nominal frequency
          // DRAM budgets to try at this level: a dense grid over the
          // activity headroom plus the demand-tight point (exact: demand
          // only shrinks as RAPL lowers the frequency, so the
          // nominal-frequency draw is an upper bound). The grid pitch
          // bounds how far a continuum optimum can escape the search.
          const double act_max = level_bw * spec.mem_w_per_gbps();
          std::vector<double> caps;
          for (double frac = 0.05; frac <= 1.0 + 1e-9; frac += 0.05)
            caps.push_back(base_w + frac * act_max);
          caps.push_back(base_w + std::min(demand_bw, level_bw) *
                                      spec.mem_w_per_gbps());

          GridCombo combo;
          combo.node_share = node_share;
          combo.base.nodes = nodes;
          combo.base.node.threads = threads;
          combo.base.node.affinity = affinity;
          combo.base.node.mem_level = level;
          // Keep feasible caps only and drop exact duplicates (the
          // demand-tight point regularly lands on a grid point; re-running
          // it would waste an exact execution).
          for (double mem_w : caps) {
            if (node_share - mem_w <= 1.0) continue;
            if (std::find(combo.mem_caps.begin(), combo.mem_caps.end(),
                          mem_w) != combo.mem_caps.end())
              continue;
            combo.mem_caps.push_back(mem_w);
          }
          if (!combo.mem_caps.empty()) combos.push_back(std::move(combo));
        }
      }
    }
  }
  CLIP_ENSURE(!combos.empty(), "oracle found no feasible configuration");

  // ---- evaluate -----------------------------------------------------------
  // Exact times per (combo, cap); untouched entries stay +inf and lose the
  // final scan. All evaluations are exact (noise-free) runs, so the filled
  // values are identical whatever the execution order — parallelism and
  // pruning can only change *which* entries get filled, never their values.
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> times(combos.size());
  for (std::size_t i = 0; i < combos.size(); ++i)
    times[i].assign(combos[i].mem_caps.size(), kInf);

  std::atomic<double> best_seen{kInf};
  const auto evaluate_combo = [&](std::size_t ci) {
    const GridCombo& combo = combos[ci];
    double local_best = kInf;
    for (std::size_t j = 0; j < combo.mem_caps.size(); ++j) {
      sim::ClusterConfig cfg = combo.base;
      cfg.node.mem_cap = Watts(combo.mem_caps[j]);
      cfg.node.cpu_cap = Watts(combo.node_share - combo.mem_caps[j]);
      const sim::Measurement m = executor_->run_exact(app, cfg);
      last_search_cost_.fetch_add(1, std::memory_order_relaxed);
      times[ci][j] = m.time.value();
      local_best = std::min(local_best, times[ci][j]);
    }
    update_min(best_seen, local_best);
  };

  // Evaluation order over combos: with pruning, cheapest lower bound first
  // so a near-optimal incumbent appears early and prunes the rest.
  std::vector<std::size_t> order(combos.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double> bound(combos.size(), -kInf);

  if (options_.prune) {
    // One uncapped run per combo: caps at the NodeConfig defaults (1e9 W)
    // dominate every grid point of the combo, so this time is a valid lower
    // bound for all of them. The uncapped config is budget-independent,
    // which makes these runs ideal ExactRunCache citizens across budget
    // sweeps — and it is never itself a candidate (its caps ignore the
    // budget).
    const auto evaluate_bound = [&](std::size_t ci) {
      const sim::Measurement m = executor_->run_exact(app, combos[ci].base);
      last_search_cost_.fetch_add(1, std::memory_order_relaxed);
      bound[ci] = m.time.value();
    };
    if (pool_ != nullptr) {
      parallel::parallel_for(*pool_, 0,
                             static_cast<std::int64_t>(combos.size()),
                             [&](std::int64_t i) {
                               evaluate_bound(static_cast<std::size_t>(i));
                             },
                             parallel::Schedule::kDynamic, 8);
    } else {
      for (std::size_t i = 0; i < combos.size(); ++i) evaluate_bound(i);
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return bound[a] < bound[b];
                     });
  }

  // A combo whose lower bound cannot *strictly* beat the incumbent cannot
  // contain the winner (the final scan also uses strict <), so skipping it
  // is lossless. The incumbent only tightens over time; a stale read just
  // prunes less.
  const auto visit = [&](std::size_t ci) {
    if (options_.prune &&
        bound[ci] >= best_seen.load(std::memory_order_relaxed))
      return;
    evaluate_combo(ci);
  };
  if (pool_ != nullptr) {
    parallel::parallel_for(*pool_, 0,
                           static_cast<std::int64_t>(order.size()),
                           [&](std::int64_t i) {
                             visit(order[static_cast<std::size_t>(i)]);
                           },
                           parallel::Schedule::kDynamic, 1);
  } else {
    for (std::size_t i = 0; i < order.size(); ++i) visit(order[i]);
  }

  // ---- deterministic winner selection ------------------------------------
  // Scan in canonical grid order with strict improvement, exactly like the
  // historical serial search — so for a fully evaluated grid the chosen
  // configuration matches the legacy oracle bit for bit.
  sim::ClusterConfig best;
  double best_time = kInf;
  for (std::size_t ci = 0; ci < combos.size(); ++ci) {
    for (std::size_t j = 0; j < combos[ci].mem_caps.size(); ++j) {
      if (times[ci][j] < best_time) {
        best_time = times[ci][j];
        best = combos[ci].base;
        best.node.mem_cap = Watts(combos[ci].mem_caps[j]);
        best.node.cpu_cap =
            Watts(combos[ci].node_share - combos[ci].mem_caps[j]);
      }
    }
  }
  CLIP_ENSURE(best_time < kInf, "oracle found no feasible configuration");
  return best;
}

}  // namespace clip::baselines
