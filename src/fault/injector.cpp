#include "fault/injector.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/power_meter.hpp"
#include "util/check.hpp"

namespace clip::fault {

double RetryPolicy::backoff_s(int attempt) const {
  CLIP_REQUIRE(attempt >= 1, "backoff attempt is 1-based");
  return backoff_base_s * std::pow(backoff_factor, attempt - 1);
}

void RetryPolicy::validate() const {
  CLIP_REQUIRE(max_attempts >= 1, "retry.max_attempts must be >= 1");
  CLIP_REQUIRE(backoff_base_s >= 0.0,
               "retry.backoff_base_s must be non-negative");
  CLIP_REQUIRE(backoff_factor >= 1.0, "retry.backoff_factor must be >= 1");
}

FaultInjector::FaultInjector(FaultPlan plan, int cluster_nodes)
    : plan_(std::move(plan)), cluster_nodes_(cluster_nodes) {
  plan_.validate(cluster_nodes);
  violation_ends_.reserve(plan_.cap_violations.size());
  for (const auto& v : plan_.cap_violations)
    violation_ends_.push_back(v.at_s + v.duration_s);
}

std::vector<double> FaultInjector::wakeups() const {
  std::vector<double> times;
  for (const auto& c : plan_.crashes) times.push_back(c.at_s);
  for (const auto& d : plan_.degrades) times.push_back(d.at_s);
  for (const auto& m : plan_.meter_faults) {
    times.push_back(m.at_s);
    times.push_back(m.at_s + m.duration_s);
  }
  for (std::size_t i = 0; i < plan_.cap_violations.size(); ++i) {
    times.push_back(plan_.cap_violations[i].at_s);
    times.push_back(violation_ends_[i]);
  }
  for (const auto& b : plan_.meter_blackouts) {
    times.push_back(b.at_s);
    times.push_back(b.at_s + b.duration_s);
  }
  for (const auto& c : plan_.budget_cuts) {
    times.push_back(c.at_s);
    times.push_back(c.at_s + c.duration_s);
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  return times;
}

bool FaultInjector::node_crashed(int node, double t) const {
  for (const auto& c : plan_.crashes)
    if (c.node == node && c.at_s <= t) return true;
  return false;
}

RunResolution FaultInjector::resolve(double start_s, double duration_s,
                                     const std::vector<int>& nodes) const {
  CLIP_REQUIRE(duration_s >= 0.0, "run duration must be non-negative");
  RunResolution r;

  // Earliest crash among the held nodes (a crash at or before start aborts
  // immediately — the queue should never place on a dead node, but resolve
  // stays total).
  double crash_at = std::numeric_limits<double>::infinity();
  int crash_node = -1;
  for (const auto& c : plan_.crashes) {
    if (std::find(nodes.begin(), nodes.end(), c.node) == nodes.end())
      continue;
    const double at = std::max(c.at_s, start_s);
    if (at < crash_at) {
      crash_at = at;
      crash_node = c.node;
    }
  }

  // Piecewise integration of the job's progress. The job paces at its
  // slowest node; a node's rate is the product of every degrade already in
  // effect on it.
  const auto rate_at = [&](double t) {
    double slowest = 1.0;
    for (int n : nodes) {
      double node_rate = 1.0;
      for (const auto& d : plan_.degrades)
        if (d.node == n && d.at_s <= t) node_rate *= d.speed_factor;
      slowest = std::min(slowest, node_rate);
    }
    return slowest;
  };
  std::vector<double> breaks;  // degrade arrivals inside the run
  for (const auto& d : plan_.degrades)
    if (d.at_s > start_s &&
        std::find(nodes.begin(), nodes.end(), d.node) != nodes.end())
      breaks.push_back(d.at_s);
  std::sort(breaks.begin(), breaks.end());
  breaks.erase(std::unique(breaks.begin(), breaks.end()), breaks.end());

  double t = start_s;
  double work_left = duration_s;
  std::size_t next_break = 0;
  double end = start_s;
  for (;;) {
    const double rate = rate_at(t);
    const double seg_end = next_break < breaks.size()
                               ? breaks[next_break]
                               : std::numeric_limits<double>::infinity();
    const double need_s = work_left / rate;
    if (t + need_s <= seg_end) {
      end = t + need_s;
      break;
    }
    work_left -= (seg_end - t) * rate;
    t = seg_end;
    ++next_break;
  }

  if (crash_at < end) {
    r.crashed = true;
    r.crashed_node = crash_node;
    r.end_s = crash_at;
  } else {
    r.end_s = end;
  }
  r.slowdown = duration_s > 0.0 ? (end - start_s) / duration_s : 1.0;
  return r;
}

double FaultInjector::work_done_s(double start_s, double t_s,
                                  const std::vector<int>& nodes) const {
  CLIP_REQUIRE(t_s >= start_s, "work_done_s needs t_s >= start_s");
  // Same piecewise rate model as resolve(): the job paces at its slowest
  // node, each node's rate is the product of the degrades in effect on it.
  const auto rate_at = [&](double t) {
    double slowest = 1.0;
    for (int n : nodes) {
      double node_rate = 1.0;
      for (const auto& d : plan_.degrades)
        if (d.node == n && d.at_s <= t) node_rate *= d.speed_factor;
      slowest = std::min(slowest, node_rate);
    }
    return slowest;
  };
  std::vector<double> breaks;
  for (const auto& d : plan_.degrades)
    if (d.at_s > start_s && d.at_s < t_s &&
        std::find(nodes.begin(), nodes.end(), d.node) != nodes.end())
      breaks.push_back(d.at_s);
  std::sort(breaks.begin(), breaks.end());
  breaks.erase(std::unique(breaks.begin(), breaks.end()), breaks.end());

  double done = 0.0;
  double t = start_s;
  for (double b : breaks) {
    done += (b - t) * rate_at(t);
    t = b;
  }
  done += (t_s - t) * rate_at(t);
  return done;
}

double FaultInjector::observed_node_power(int node, double t,
                                          double truth_w) const {
  for (const auto& m : plan_.meter_faults) {
    if (m.node != node || t < m.at_s || t >= m.at_s + m.duration_s) continue;
    // Same corruption the sim's meter layer applies (sim/power_meter.hpp),
    // windowed by the plan.
    sim::MeterFaultState state;
    state.value = m.value;
    switch (m.kind) {
      case MeterFaultKind::kStuckAt:
        state.kind = sim::MeterFaultState::Kind::kStuckAt;
        break;
      case MeterFaultKind::kDropout:
        state.kind = sim::MeterFaultState::Kind::kDropout;
        break;
      case MeterFaultKind::kSpike:
        state.kind = sim::MeterFaultState::Kind::kSpike;
        break;
    }
    return sim::corrupt_reading(state, truth_w);
  }
  return truth_w;
}

double FaultInjector::cap_excess_w(const std::vector<int>& nodes,
                                   double t) const {
  double excess = 0.0;
  for (std::size_t i = 0; i < plan_.cap_violations.size(); ++i) {
    const auto& v = plan_.cap_violations[i];
    if (t < v.at_s || t >= violation_ends_[i]) continue;
    if (std::find(nodes.begin(), nodes.end(), v.node) == nodes.end())
      continue;
    excess += v.excess_w;
  }
  return excess;
}

int FaultInjector::truncate_cap_violations(int node, double t) {
  int truncated = 0;
  for (std::size_t i = 0; i < plan_.cap_violations.size(); ++i) {
    const auto& v = plan_.cap_violations[i];
    if (v.node != node || t < v.at_s || t >= violation_ends_[i]) continue;
    violation_ends_[i] = t;
    ++truncated;
  }
  return truncated;
}

bool FaultInjector::meters_blacked_out(double t) const {
  for (const auto& b : plan_.meter_blackouts)
    if (b.at_s <= t && t < b.at_s + b.duration_s) return true;
  return false;
}

double FaultInjector::budget_cut_factor(double t) const {
  double factor = 1.0;
  for (const auto& c : plan_.budget_cuts)
    if (c.at_s <= t && t < c.at_s + c.duration_s)
      factor = std::min(factor, c.factor);
  return factor;
}

void FaultInjector::restore_violation_ends(const std::vector<double>& ends) {
  CLIP_REQUIRE(ends.size() == violation_ends_.size(),
               "violation-ends snapshot does not match the plan (" +
                   std::to_string(ends.size()) + " vs " +
                   std::to_string(violation_ends_.size()) + " windows)");
  for (std::size_t i = 0; i < ends.size(); ++i)
    CLIP_REQUIRE(ends[i] <= violation_ends_[i],
                 "violation-ends snapshot extends a window (claw-backs only "
                 "ever truncate)");
  violation_ends_ = ends;
}

std::vector<int> FaultInjector::violating_nodes(const std::vector<int>& nodes,
                                                double t) const {
  std::vector<int> out;
  for (std::size_t i = 0; i < plan_.cap_violations.size(); ++i) {
    const auto& v = plan_.cap_violations[i];
    if (t < v.at_s || t >= violation_ends_[i]) continue;
    if (std::find(nodes.begin(), nodes.end(), v.node) == nodes.end())
      continue;
    if (std::find(out.begin(), out.end(), v.node) == out.end())
      out.push_back(v.node);
  }
  return out;
}

}  // namespace clip::fault
