#include "workloads/signature.hpp"

#include "util/check.hpp"

namespace clip::workloads {

const char* to_string(ScalabilityClass c) {
  switch (c) {
    case ScalabilityClass::kLinear:
      return "linear";
    case ScalabilityClass::kLogarithmic:
      return "logarithmic";
    case ScalabilityClass::kParabolic:
      return "parabolic";
  }
  return "?";
}

const char* to_string(WorkloadPattern p) {
  switch (p) {
    case WorkloadPattern::kCompute:
      return "compute";
    case WorkloadPattern::kComputeMemory:
      return "compute/memory";
    case WorkloadPattern::kMemory:
      return "memory";
  }
  return "?";
}

void WorkloadSignature::validate() const {
  CLIP_REQUIRE(!name.empty(), "workload needs a name");
  CLIP_REQUIRE(node_base_time_s > 0.0, "base time must be positive");
  CLIP_REQUIRE(serial_fraction >= 0.0 && serial_fraction < 1.0,
               "serial fraction in [0,1)");
  CLIP_REQUIRE(memory_boundedness >= 0.0 && memory_boundedness <= 1.0,
               "memory boundedness in [0,1]");
  CLIP_REQUIRE(bw_per_core_gbps >= 0.0, "bandwidth demand must be >= 0");
  CLIP_REQUIRE(memory_boundedness == 0.0 || bw_per_core_gbps > 0.0,
               "memory-bound work requires a bandwidth demand");
  CLIP_REQUIRE(fork_overhead_s >= 0.0, "fork overhead must be >= 0");
  CLIP_REQUIRE(sync_coeff_s >= 0.0, "sync coefficient must be >= 0");
  CLIP_REQUIRE(sync_exponent >= 1.0, "sync exponent must be >= 1");
  CLIP_REQUIRE(shared_data_fraction >= 0.0 && shared_data_fraction <= 1.0,
               "shared data fraction in [0,1]");
  CLIP_REQUIRE(compute_intensity > 0.0 && compute_intensity <= 1.2,
               "compute intensity in (0,1.2]");
  CLIP_REQUIRE(ipc > 0.0 && ipc <= 8.0, "IPC in (0,8]");
  CLIP_REQUIRE(icache_pressure >= 0.0 && icache_pressure <= 1.0,
               "icache pressure in [0,1]");
  CLIP_REQUIRE(write_fraction >= 0.0 && write_fraction <= 1.0,
               "write fraction in [0,1]");
  CLIP_REQUIRE(comm_latency_s >= 0.0, "comm latency must be >= 0");
  CLIP_REQUIRE(comm_surface_coeff >= 0.0, "comm surface coeff must be >= 0");
}

}  // namespace clip::workloads
