#include "baselines/all_in.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace clip::baselines {

sim::ClusterConfig AllInScheduler::plan(
    const workloads::WorkloadSignature& app, Watts cluster_budget) {
  app.validate();
  CLIP_REQUIRE(cluster_budget.value() > 0.0, "budget must be positive");

  sim::ClusterConfig cfg;
  cfg.nodes = spec_->nodes;
  cfg.node.threads = spec_->shape.total_cores();
  cfg.node.affinity = parallel::AffinityPolicy::kScatter;
  cfg.node.mem_level = sim::MemPowerLevel::kL0;

  const double node_share = cluster_budget.value() / spec_->nodes;
  // 30 W to memory, the rest to the CPU — "without considering the cluster
  // power budget" means the method never reduces node or core counts; a
  // collapsed CPU share simply throttles. Keep at least 1 W so RAPL has a
  // target to duty-cycle against.
  cfg.node.mem_cap = mem_per_node_;
  cfg.node.cpu_cap =
      Watts(std::max(1.0, node_share - mem_per_node_.value()));
  return cfg;
}

}  // namespace clip::baselines
