// Journal — the scheduler's crash-consistency layer (docs/robustness.md).
//
// The queue event loop (runtime/queue.hpp) is deterministic: given the same
// jobs, options and fault plan it makes bit-identical decisions. The journal
// exploits that for recovery by re-execution. Every state-changing event the
// loop applies (admit, launch, grant, claw schedule/actuate/dissolve,
// crash-requeue, complete, redistribution tick outcomes, mode transitions)
// is appended as one record, with doubles rendered by obs::format_exact so a
// replay parses back the exact bits. Periodically the loop also appends a
// *snapshot* record — a complete serialization of its state (queue depth and
// per-job states, running placements, the free pool implied by them,
// BudgetGuard counters, pending redistribution claw-backs, the degraded-mode
// state and the attached flight recorder). QueueEventLoop::recover restores
// the latest snapshot, replays the suffix records as verification against
// its own re-derived decisions, and resumes; a clean recovery is
// byte-identical to a run that never died.
//
// On disk a journal is line-oriented text: a version header, then one record
// per line carrying a sequence number, a kind, a payload and a CRC-32 over
// the rest of the line. Files are published with write-temp + fsync + atomic
// rename (util/fsio.hpp), and load() practices salvage-prefix recovery: a
// torn or corrupted tail is dropped at the first bad line and reported as a
// gap rather than poisoning the whole file.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace clip::runtime {

struct JournalRecord {
  std::uint64_t seq = 0;  ///< 1-based, contiguous
  std::string kind;       ///< e.g. "launch", "complete", "snapshot"
  std::string payload;    ///< kind-specific, single-line, format_exact doubles
};

struct JournalOptions {
  /// Event records between snapshots. Smaller = less replay on recovery,
  /// larger = smaller journal and cheaper journaling (snapshots are the
  /// expensive record kind; bench/recovery.cpp prices them). Replay is
  /// deterministic re-execution, so a sparse cadence costs recovery time
  /// only, never fidelity. The property tests use small values so every
  /// kill point lands near a snapshot.
  int snapshot_every = 64;
};

/// What Journal::load salvaged from a file.
struct JournalLoadResult {
  std::size_t records = 0;        ///< valid records kept
  std::size_t dropped_lines = 0;  ///< lines lost to the corrupt tail
  bool salvaged = false;          ///< true: the tail was torn or corrupted
  std::string gap;                ///< first bad line's diagnosis (when salvaged)
};

class Journal {
 public:
  explicit Journal(JournalOptions options = JournalOptions{});

  [[nodiscard]] const JournalOptions& options() const { return options_; }

  /// Append one record. `kind` must be non-empty and space-free; `payload`
  /// must be newline-free (embed structured data via journal_escape). Taken
  /// by value: the event loop's hot path hands over freshly built payload
  /// strings, which move into the record instead of being copied.
  void append(std::string_view kind, std::string payload);

  [[nodiscard]] const std::vector<JournalRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] bool empty() const { return records_.empty(); }
  void clear() { records_.clear(); }

  /// Keep only the first `n` records — how the tests model a coordinator
  /// killed at an event boundary: everything after the cut is lost.
  void truncate(std::size_t n);

  /// Index of the latest snapshot record, or nullopt when none exists.
  [[nodiscard]] std::optional<std::size_t> last_snapshot() const;

  /// Durably write the journal (header + CRC-per-record lines) via
  /// write-temp + fsync + atomic rename.
  void save(const std::filesystem::path& path) const;

  /// Replace this journal's contents with the valid prefix of `path`.
  /// Throws when the file is missing or its header is not a journal's; a
  /// corrupt or truncated *tail* is salvaged instead (dropped and reported).
  JournalLoadResult load(const std::filesystem::path& path);

  /// Human-oriented summary: record/snapshot counts and per-kind totals,
  /// one line each — `clipctl journal` prints this. Kinds missing from
  /// known_record_kinds() are marked "(unregistered)".
  [[nodiscard]] std::string describe() const;

 private:
  JournalOptions options_;
  std::vector<JournalRecord> records_;
};

/// The closed set of record kinds the event loop produces and recovery
/// replays. This is the registry clip-analyze's J2 rule checks both ways:
/// a jlog/append_or_verify site with a kind not listed here is a finding
/// (the new record type would silently skip recovery/describe coverage),
/// and a listed kind with no producer is a finding (dead registry arm).
/// append() itself stays permissive — tests exercise synthetic kinds.
[[nodiscard]] const std::vector<std::string>& known_record_kinds();

/// CRC-32 (IEEE 802.3) of `data` — the per-record checksum.
[[nodiscard]] std::uint32_t crc32(std::string_view data);

/// Make an arbitrary string safe as a payload token: escapes backslash,
/// newline and space (so tokenized payloads survive embedded CSV or labels).
[[nodiscard]] std::string journal_escape(std::string_view s);
[[nodiscard]] std::string journal_unescape(std::string_view s);

}  // namespace clip::runtime
