#include "sim/phased.hpp"

#include <sstream>

namespace clip::sim {

std::string PhasedClusterConfig::describe() const {
  std::ostringstream os;
  os << nodes << " node(s), " << phase_nodes.size() << " phases:";
  for (std::size_t i = 0; i < phase_nodes.size(); ++i)
    os << " [" << i << ": " << phase_nodes[i].describe() << "]";
  return os.str();
}

}  // namespace clip::sim
