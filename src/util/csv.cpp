#include "util/csv.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace clip {

int CsvDocument::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i)
    if (header[i] == name) return static_cast<int>(i);
  return -1;
}

void write_csv(const std::filesystem::path& path, const CsvDocument& doc) {
  if (path.has_parent_path())
    std::filesystem::create_directories(path.parent_path());
  std::ofstream os(path);
  CLIP_REQUIRE(os.good(), "cannot open CSV for writing: " + path.string());
  os << render_csv(doc);
  CLIP_ENSURE(os.good(), "CSV write failed: " + path.string());
}

std::string render_csv(const CsvDocument& doc) {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(doc.header);
  for (const auto& row : doc.rows) emit(row);
  return os.str();
}

std::vector<std::string> parse_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else {
      field.push_back(c);
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

CsvDocument read_csv(const std::filesystem::path& path) {
  std::ifstream is(path);
  CLIP_REQUIRE(is.good(), "cannot open CSV for reading: " + path.string());
  std::ostringstream buf;
  buf << is.rdbuf();
  return parse_csv(buf.str(), path.string());
}

CsvDocument parse_csv(const std::string& text, const std::string& context) {
  std::istringstream is(text);
  CsvDocument doc;
  std::string line;
  bool first = true;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    // A quoted field may span physical lines (e.g. an event label with a
    // newline). A record is complete once its quote count is even — escaped
    // quotes are doubled, so they keep the parity intact.
    while (std::count(line.begin(), line.end(), '"') % 2 != 0) {
      std::string more;
      CLIP_REQUIRE(static_cast<bool>(std::getline(is, more)),
                   "unterminated quoted field in " + context);
      if (!more.empty() && more.back() == '\r') more.pop_back();
      line += '\n';
      line += more;
    }
    if (line.empty()) continue;
    auto fields = parse_csv_line(line);
    if (first) {
      doc.header = std::move(fields);
      first = false;
    } else {
      CLIP_REQUIRE(fields.size() == doc.header.size(),
                   "ragged CSV row in " + context);
      doc.rows.push_back(std::move(fields));
    }
  }
  CLIP_REQUIRE(!first, "empty CSV: " + context);
  return doc;
}

}  // namespace clip
