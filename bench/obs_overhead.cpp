// Cost of the live observability plane (docs/observability.md). Two claims:
//
//   Purity — attaching *everything* (ObsSession + MemorySink, Timeline,
//   Journal, per-job trace contexts, the loop-owned telemetry server, an
//   SLO pass over the recorded timeline) leaves the queue's report
//   byte-identical to a bare run: observers never steer decisions. The
//   bench also probes all four HTTP endpoints of the live server.
//
//   Cost — the queue duty cycle with telemetry + tracing on vs off. The
//   paper job mix is repeated 10x so one server instance serves a run with
//   hundreds of scheduling decisions (as in production, where the server
//   lives for an hours-long run) and its one-time thread spawn amortizes;
//   the median paired CPU-time ratio is reported as overhead_pct.
//
// `--json` writes BENCH_obs.json (schema in bench/README.md), which
// `scripts/regression_gate.sh --obs` gates on: identical reports, 4/4
// endpoints, overhead within its bound (default 3%).
#include <algorithm>
#include <ctime>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/scheduler.hpp"
#include "obs/alerts.hpp"
#include "obs/session.hpp"
#include "obs/sink.hpp"
#include "obs/telemetry_server.hpp"
#include "obs/timeline.hpp"
#include "runtime/journal.hpp"
#include "runtime/queue.hpp"
#include "util/strings.hpp"

using namespace clip;

namespace {

/// Bit-exact textual fingerprint of one run: hexfloat report scalars plus
/// the per-job table. Trace ids are deliberately excluded — the live side
/// mints them, the bare side does not, and the contract under test is that
/// *decisions* (placement, caps, timing) are unchanged.
std::string fingerprint(const runtime::QueueReport& r) {
  std::ostringstream os;
  os << std::hexfloat << r.makespan_s << '|' << r.mean_turnaround_s << '|'
     << r.total_energy_j << '|' << r.retries << '|' << r.jobs_failed << '|'
     << r.caps_reprogrammed << '|' << r.violation_s << '|' << r.violation_ws;
  for (const auto& j : r.jobs)
    os << '\n'
       << j.app << ',' << j.start_s << ',' << j.end_s << ',' << j.nodes << ','
       << j.budget_w << ',' << j.attempts << ',' << j.completed;
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchContext ctx(argc, argv);
  bool json = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--json") json = true;

  sim::SimExecutor ex = bench::make_exact_testbed();
  core::ClipScheduler sched(ex, workloads::training_benchmarks());
  const auto apps = workloads::paper_benchmarks();
  const double budget = 700.0;

  runtime::QueueOptions bare;
  bare.cluster_budget = Watts(budget);
  // 10x the paper mix: a long-lived run whose decision count dwarfs the
  // plane's per-run setup, so the ratio below converges to the marginal
  // per-decision cost rather than the server's thread-spawn constant.
  std::vector<runtime::QueueJob> jobs;
  for (int rep = 0; rep < 10; ++rep)
    for (const auto& a : apps) jobs.push_back({a, 0});

  runtime::QueueOptions live = bare;
  live.trace.enabled = true;
  live.telemetry_port = 0;  // ephemeral: read back via telemetry_server()

  // Warm the knowledge DB so both sides schedule from identical cached
  // profiles and neither sweep pays the one-time profiling cost.
  (void)runtime::PowerAwareJobQueue(ex, sched, bare).run(jobs);

  // One queue pass with only the options toggled (no attachments): exactly
  // the "telemetry + tracing on vs off" duty cycle the gate bounds.
  const auto sweep = [&](bool plane) {
    runtime::QueueEventLoop loop(ex, sched, plane ? live : bare, jobs);
    return loop.run();
  };

  // Purity: the *fully* instrumented run — every attachment plus the SLO
  // pass — must make byte-for-byte the decisions the bare run makes.
  const std::string bare_fp = fingerprint(sweep(false));
  std::size_t alerts_fired = 0;
  std::string live_fp;
  int endpoints_ok = 0;
  {
    runtime::QueueEventLoop loop(ex, sched, live, jobs);
    obs::ObsSession session;
    obs::MemorySink sink;
    obs::Timeline timeline;
    runtime::Journal journal;
    session.set_sink(&sink);
    loop.set_observer(&session);
    loop.set_timeline(&timeline);
    loop.set_journal(&journal);
    live_fp = fingerprint(loop.run());
    const obs::AlertEngine engine(obs::AlertEngine::default_rules());
    for (const auto& o : engine.evaluate(timeline, &session.metrics()))
      alerts_fired += o.fired ? 1 : 0;
    // Endpoint probe: the loop owns the server until destruction, so the
    // finished run still answers one GET per endpoint.
    const obs::TelemetryServer* server = loop.telemetry_server();
    if (server != nullptr && server->port() > 0) {
      const auto ok = [&](const std::string& target,
                          const std::string& expect) {
        const std::string body = obs::http_body(
            obs::http_get("127.0.0.1", server->port(), target));
        return body.find(expect) != std::string::npos ? 1 : 0;
      };
      endpoints_ok += ok("/metrics", "queue_jobs_started");
      endpoints_ok += ok("/healthz", "ok mode=");
      endpoints_ok += ok("/status", "\"run_active\":false");
      endpoints_ok += ok("/timeline?series=queue.depth", "queue.depth");
    }
  }
  const bool identical = bare_fp == live_fp;

  const auto cpu_ms = [] {
    // Process CPU time, not steady_clock: co-tenant preemption inflates
    // wall-clock by more than the plane costs, and CPU time also charges
    // the server thread's (accept-idle) cycles to the side that owns them.
    timespec ts;
    // clip-lint: allow(D1) prices the obs plane in real CPU ms; a simulated clock has nothing to say here
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) * 1e3 +
           static_cast<double>(ts.tv_nsec) / 1e6;
  };
  // Same robust estimator as bench/recovery.cpp: adjacent off/on batch
  // pairs (host drift cancels within a pair), alternating order (the
  // second batch of a pair runs measurably slower), median of per-pair
  // ratios (a preempted pair is an outlier the median ignores). Escalate
  // sampling only while the estimate sits near the gate's 3% bound.
  constexpr int kSweepsPerSample = 4;
  constexpr int kPairs = 12;
  constexpr int kMaxRounds = 4;
  const auto time_one = [&](bool plane) {
    const double t0 = cpu_ms();
    for (int i = 0; i < kSweepsPerSample; ++i) (void)sweep(plane);
    return (cpu_ms() - t0) / kSweepsPerSample;
  };
  (void)sweep(false);  // warm both paths before timing either side
  (void)sweep(true);
  double off_ms = 0.0;
  double on_ms = 0.0;
  std::vector<double> ratios;
  const auto median_pct = [](std::vector<double> v) {
    if (v.empty()) return 0.0;
    std::sort(v.begin(), v.end());
    const double m = v.size() % 2 == 1
                         ? v[v.size() / 2]
                         : 0.5 * (v[v.size() / 2 - 1] + v[v.size() / 2]);
    return (m - 1.0) * 100.0;
  };
  for (int round = 0; round < kMaxRounds; ++round) {
    for (int rep = 0; rep < kPairs; ++rep) {
      const bool off_first = (rep + round * kPairs) % 2 == 0;
      const double first = time_one(!off_first);
      const double second = time_one(off_first);
      const double off = off_first ? first : second;
      const double on = off_first ? second : first;
      off_ms = ratios.empty() ? off : std::min(off_ms, off);
      on_ms = ratios.empty() ? on : std::min(on_ms, on);
      if (off > 0.0) ratios.push_back(on / off);
    }
    if (median_pct(ratios) <= 2.0) break;
  }
  const double overhead_pct = std::max(0.0, median_pct(ratios));

  Table t({"check", "result"});
  t.set_title("Live observability plane at a " + format_double(budget, 0) +
              " W bound: purity and cost");
  t.add_row({"reports byte-identical", identical ? "yes" : "NO"});
  t.add_row({"endpoints responding", std::to_string(endpoints_ok) + "/4"});
  t.add_row({"alert rules evaluated",
             std::to_string(obs::AlertEngine::default_rules().size())});
  t.add_row({"alerts fired", std::to_string(alerts_fired)});
  t.add_row({"jobs per run", std::to_string(jobs.size())});
  t.add_row({"plane-off run (ms)", format_double(off_ms, 1)});
  t.add_row({"plane-on run (ms)", format_double(on_ms, 1)});
  t.add_row({"duty-cycle overhead", format_double(overhead_pct, 1) + "%"});
  ctx.print(t);

  std::cout << "Full instrumentation leaves the schedule byte-identical; "
               "telemetry + tracing cost "
            << format_double(overhead_pct, 1) << "% of the queue duty cycle ("
            << format_double(off_ms, 1) << " -> " << format_double(on_ms, 1)
            << " ms per " << jobs.size() << "-job run).\n";

  if (json) {
    std::ofstream os("BENCH_obs.json");
    os << "{\n  \"budget_w\": " << format_double(budget, 0)
       << ",\n  \"jobs\": " << jobs.size()
       << ",\n  \"identical_reports\": " << (identical ? 1 : 0)
       << ",\n  \"endpoints_ok\": " << endpoints_ok
       << ",\n  \"alert_rules\": " << obs::AlertEngine::default_rules().size()
       << ",\n  \"alerts_fired\": " << alerts_fired
       << ",\n  \"plane_off_ms\": " << format_double(off_ms, 1)
       << ",\n  \"plane_on_ms\": " << format_double(on_ms, 1)
       << ",\n  \"overhead_pct\": " << static_cast<int>(overhead_pct)
       << "\n}\n";
    std::cerr << "wrote BENCH_obs.json\n";
  }
  return identical && endpoints_ok == 4 ? 0 : 1;
}
