// Cluster-level communication cost (the MPI side of the hybrid model).
//
// A standard α-β decomposition: a latency/synchronization term growing with
// log2(N) (tree collectives) and a halo-exchange term proportional to the
// per-node surface, which for a 3-D domain decomposition scales as the 2/3
// power of the per-node volume (≈ per-node work share).
#pragma once

#include "util/units.hpp"
#include "workloads/signature.hpp"

namespace clip::sim {

class CommModel {
 public:
  /// Communication time per run for `nodes` participants with the given
  /// per-node work share (1-core-seconds). Zero for a single node.
  [[nodiscard]] static Seconds evaluate(const workloads::WorkloadSignature& w,
                                        int nodes, double node_work_s);
};

}  // namespace clip::sim
