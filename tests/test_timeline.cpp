// Tests for the cluster flight recorder (obs::Timeline), its producers
// (power meter, RAPL controller sim, telemetry bridge, power-aware queue),
// the run-record/run-report pipeline (runtime/run_report.hpp), and the
// Prometheus text exporter. Everything here runs on the simulated-seconds
// axis, so the determinism assertions are exact byte comparisons.
#include <gtest/gtest.h>

#include <unistd.h>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/scheduler.hpp"
#include "obs/obs.hpp"
#include "runtime/queue.hpp"
#include "runtime/run_report.hpp"
#include "runtime/telemetry.hpp"
#include "sim/executor.hpp"
#include "sim/power_meter.hpp"
#include "sim/rapl_controller.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "workloads/catalog.hpp"

namespace clip {
namespace {

/// Unique per test case *and* process (ctest -j runs cases concurrently).
std::filesystem::path temp_path(const std::string& stem) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return std::filesystem::temp_directory_path() /
         (stem + "." + info->name() + "." + std::to_string(::getpid()));
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

sim::MeterOptions no_noise() {
  sim::MeterOptions m;
  m.enabled = false;
  return m;
}

/// Bit-exact textual fingerprint of a QueueReport, for the detached-timeline
/// byte-identity assertion.
std::string fingerprint(const runtime::QueueReport& r) {
  std::ostringstream os;
  os << std::hexfloat;
  os << r.makespan_s << '|' << r.mean_turnaround_s << '|'
     << r.total_energy_j << '|' << r.node_seconds_used << '|'
     << r.violation_s << '|' << r.violation_ws;
  for (const auto& j : r.jobs)
    os << '\n'
       << j.app << ',' << j.start_s << ',' << j.end_s << ',' << j.nodes
       << ',' << j.budget_w << ',' << j.power_w;
  return os.str();
}

// ---------------------------------------------------------- Timeline core ----

TEST(Timeline, RecordsAndSummarizes) {
  obs::Timeline tl;
  tl.record("node0.power_w", 0.0, 100.0);
  tl.record("node0.power_w", 1.0, 120.0);
  tl.record("node0.power_w", 3.0, 80.0);
  tl.event("job", 0.5, "start A");

  const auto names = tl.series_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "job");
  EXPECT_EQ(names[1], "node0.power_w");
  EXPECT_EQ(tl.total_samples(), 3u);
  EXPECT_EQ(tl.dropped(), 0u);

  const auto s = tl.summary("node0.power_w");
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.min, 80.0);
  EXPECT_DOUBLE_EQ(s.max, 120.0);
  EXPECT_DOUBLE_EQ(s.mean, 100.0);
  EXPECT_DOUBLE_EQ(s.first_t_s, 0.0);
  EXPECT_DOUBLE_EQ(s.last_t_s, 3.0);

  const auto events = tl.events("job");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].label, "start A");
}

TEST(Timeline, StepFunctionQueries) {
  obs::Timeline tl;
  tl.record("p", 1.0, 100.0);
  tl.record("p", 3.0, 50.0);

  EXPECT_TRUE(std::isnan(tl.value_at("p", 0.5)));  // before first sample
  EXPECT_TRUE(std::isnan(tl.value_at("missing", 1.0)));
  EXPECT_DOUBLE_EQ(tl.value_at("p", 1.0), 100.0);
  EXPECT_DOUBLE_EQ(tl.value_at("p", 2.999), 100.0);
  EXPECT_DOUBLE_EQ(tl.value_at("p", 3.0), 50.0);
  EXPECT_DOUBLE_EQ(tl.value_at("p", 99.0), 50.0);  // holds last value

  // ∫ over [0, 4]: zero before t=1, then 100·2 + 50·1.
  EXPECT_DOUBLE_EQ(tl.integral("p", 0.0, 4.0), 250.0);
  // Time above 75 W within [0, 10]: exactly the [1, 3) stretch... except the
  // final segment extends to the query end, so 50 W < 75 contributes nothing.
  EXPECT_DOUBLE_EQ(tl.time_above("p", 75.0, 0.0, 10.0), 2.0);
  EXPECT_DOUBLE_EQ(tl.time_above("p", 25.0, 0.0, 10.0), 9.0);

  const auto pts = tl.resample("p", 0.0, 4.0, 5);
  ASSERT_EQ(pts.size(), 5u);
  EXPECT_DOUBLE_EQ(pts[0].t_s, 0.0);
  EXPECT_TRUE(std::isnan(pts[0].value));
  EXPECT_DOUBLE_EQ(pts[1].value, 100.0);  // t=1
  EXPECT_DOUBLE_EQ(pts[3].value, 50.0);   // t=3
  EXPECT_DOUBLE_EQ(pts[4].t_s, 4.0);
}

TEST(Timeline, RejectsTimeGoingBackwards) {
  obs::Timeline tl;
  tl.record("p", 2.0, 1.0);
  tl.record("p", 2.0, 2.0);  // equal timestamps are fine
  EXPECT_THROW(tl.record("p", 1.9, 3.0), PreconditionError);
  // Other series are independent axes.
  tl.record("q", 0.0, 0.0);
  tl.event("e", 5.0, "x");
  EXPECT_THROW(tl.event("e", 4.0, "y"), PreconditionError);
}

TEST(Timeline, RingBufferKeepsNewestAndCountsDropped) {
  obs::TimelineOptions opt;
  opt.ring_capacity = 4;
  obs::Timeline tl(opt);
  for (int i = 0; i < 10; ++i)
    tl.record("p", static_cast<double>(i), static_cast<double>(i * 10));
  const auto pts = tl.samples("p");
  ASSERT_EQ(pts.size(), 4u);
  EXPECT_DOUBLE_EQ(pts.front().t_s, 6.0);
  EXPECT_DOUBLE_EQ(pts.back().t_s, 9.0);
  EXPECT_EQ(tl.dropped(), 6u);
  EXPECT_EQ(tl.total_samples(), 4u);
}

TEST(Timeline, RingWraparoundExportIsDeterministic) {
  // Two identical bounded recorders that wrapped several times must export
  // byte-identical CSV — the ring must not leak insertion-order artifacts.
  obs::TimelineOptions opt;
  opt.ring_capacity = 8;
  obs::Timeline a(opt);
  obs::Timeline b(opt);
  for (obs::Timeline* tl : {&a, &b}) {
    for (int i = 0; i < 100; ++i) {
      const double t = 0.25 * i;
      tl->record("node0.power_w", t, 90.0 + (i % 7));
      tl->record("queue.depth", t, static_cast<double>(i % 5));
      if (i % 10 == 0) tl->event("fault", t, "crash node=" + std::to_string(i));
    }
  }
  const auto pa = temp_path("tl_ring_a");
  const auto pb = temp_path("tl_ring_b");
  a.write_csv(pa);
  b.write_csv(pb);
  EXPECT_EQ(slurp(pa), slurp(pb));
  EXPECT_EQ(a.dropped(), b.dropped());
  EXPECT_EQ(a.samples("node0.power_w").size(), 8u);
  std::filesystem::remove(pa);
  std::filesystem::remove(pb);
}

TEST(Timeline, CsvRoundTripsByteIdentically) {
  obs::Timeline tl;
  // Values chosen to stress shortest-exact formatting.
  tl.record("p", 0.1, 1.0 / 3.0);
  tl.record("p", 0.2, 1e-300);
  tl.record("p", 1e6, -0.0);
  tl.event("ev", 0.15, "label, with \"quotes\" and\nnewline");
  const auto p1 = temp_path("tl_rt1");
  const auto p2 = temp_path("tl_rt2");
  tl.write_csv(p1);

  obs::Timeline loaded;
  loaded.load_csv(p1);
  loaded.write_csv(p2);
  EXPECT_EQ(slurp(p1), slurp(p2));
  EXPECT_EQ(loaded.samples("p").size(), 3u);
  EXPECT_EQ(loaded.samples("p")[0].value, 1.0 / 3.0);  // exact, not approx
  ASSERT_EQ(loaded.events("ev").size(), 1u);
  EXPECT_EQ(loaded.events("ev")[0].label,
            "label, with \"quotes\" and\nnewline");
  std::filesystem::remove(p1);
  std::filesystem::remove(p2);
}

TEST(Timeline, EventStreamCsvRoundTripAcrossStreams) {
  // Event streams alone (no sample series at all) must round-trip through
  // the CSV export byte-identically, including empty labels, duplicate
  // timestamps, and a stream name shared with a sample series.
  obs::Timeline tl;
  tl.event("job", 0.0, "admit A");
  tl.event("job", 0.0, "admit B");  // same instant, insertion order kept
  tl.event("job", 2.5, "");         // empty label survives
  tl.event("mode", 1.0, "enter METER_BLACKOUT");
  tl.event("mode", 4.0, "exit METER_BLACKOUT");
  tl.record("mode", 1.0, 1.0);  // samples and events may share a name

  const auto p1 = temp_path("tl_ev1");
  const auto p2 = temp_path("tl_ev2");
  tl.write_csv(p1);
  obs::Timeline loaded;
  loaded.load_csv(p1);
  loaded.write_csv(p2);
  EXPECT_EQ(slurp(p1), slurp(p2));

  const auto job = loaded.events("job");
  ASSERT_EQ(job.size(), 3u);
  EXPECT_EQ(job[0].label, "admit A");
  EXPECT_EQ(job[1].label, "admit B");
  EXPECT_EQ(job[2].label, "");
  EXPECT_EQ(loaded.events("mode").size(), 2u);
  EXPECT_EQ(loaded.samples("mode").size(), 1u);
  // The string form matches the file form exactly (journal snapshots embed
  // timelines via to_csv_string, so the two paths must agree).
  EXPECT_EQ(tl.to_csv_string(), slurp(p1));
  std::filesystem::remove(p1);
  std::filesystem::remove(p2);
}

TEST(Timeline, IntegralWindowBoundaryEdgeCases) {
  obs::Timeline tl;
  tl.record("p", 1.0, 100.0);
  tl.record("p", 3.0, 50.0);

  // Window edges exactly on sample instants: [1,3] is the 100 W stretch.
  EXPECT_DOUBLE_EQ(tl.integral("p", 1.0, 3.0), 200.0);
  // Entirely before the first sample: contributes zero.
  EXPECT_DOUBLE_EQ(tl.integral("p", 0.0, 1.0), 0.0);
  // Entirely after the last sample: the final value holds.
  EXPECT_DOUBLE_EQ(tl.integral("p", 5.0, 7.0), 100.0);
  // Zero-width windows integrate to zero, wherever they sit.
  EXPECT_DOUBLE_EQ(tl.integral("p", 2.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(tl.integral("p", 3.0, 3.0), 0.0);
  // Window splitting a segment takes only its share.
  EXPECT_DOUBLE_EQ(tl.integral("p", 2.0, 3.5), 100.0 + 25.0);
  // Inverted windows are caller bugs.
  EXPECT_THROW((void)tl.integral("p", 3.0, 1.0), PreconditionError);
  // Unknown series: zero, not a throw (summaries over sparse runs).
  EXPECT_DOUBLE_EQ(tl.integral("nope", 0.0, 10.0), 0.0);
}

TEST(Timeline, TimeAboveWindowBoundaryEdgeCases) {
  obs::Timeline tl;
  tl.record("p", 1.0, 100.0);
  tl.record("p", 3.0, 50.0);

  // Strictly-above: a threshold equal to the plateau counts nothing.
  EXPECT_DOUBLE_EQ(tl.time_above("p", 100.0, 0.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(tl.time_above("p", 99.999, 0.0, 10.0), 2.0);
  // Window edge exactly on the downward step excludes the later segment.
  EXPECT_DOUBLE_EQ(tl.time_above("p", 75.0, 1.0, 3.0), 2.0);
  // Window clipped inside one segment.
  EXPECT_DOUBLE_EQ(tl.time_above("p", 75.0, 2.0, 3.5), 1.0);
  // Before the first sample nothing is above anything.
  EXPECT_DOUBLE_EQ(tl.time_above("p", 0.0, 0.0, 1.0), 0.0);
  // The last value holds to the window end.
  EXPECT_DOUBLE_EQ(tl.time_above("p", 25.0, 5.0, 8.0), 3.0);
  // Zero-width window.
  EXPECT_DOUBLE_EQ(tl.time_above("p", 25.0, 2.0, 2.0), 0.0);
  EXPECT_THROW((void)tl.time_above("p", 0.0, 2.0, 1.0), PreconditionError);
}

TEST(Timeline, LoadCsvRejectsMalformedInput) {
  const auto p = temp_path("tl_bad");
  {
    std::ofstream out(p);
    out << "kind,series,t_s,value,label\nwibble,p,0,1,\n";
  }
  obs::Timeline tl;
  EXPECT_THROW(tl.load_csv(p), PreconditionError);
  {
    std::ofstream out(p);
    out << "not,the,right,header,at-all\n";
  }
  EXPECT_THROW(tl.load_csv(p), PreconditionError);
  std::filesystem::remove(p);
}

TEST(FormatExact, RoundTripsThroughStrtod) {
  for (const double v : {0.0, -0.0, 1.0 / 3.0, 0.1, 1e-300, 6.02214076e23,
                         71.29142574904435, -123.456}) {
    const std::string s = obs::format_exact(v);
    char* end = nullptr;
    const double back = std::strtod(s.c_str(), &end);
    EXPECT_EQ(*end, '\0') << s;
    EXPECT_EQ(std::memcmp(&back, &v, sizeof v), 0) << s;
  }
}

namespace {

/// The historical format_exact: try every precision until strtod round-trips.
/// The production version now finds the precision in one std::to_chars pass;
/// this reference pins its output byte-identical (journal payloads and
/// persisted timeline CSVs depend on the exact rendering).
std::string format_exact_reference(double v) {
  char buf[40];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);  // clip-lint: allow(D3) reference reimplementation of format_exact itself; pins the production rendering
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

}  // namespace

TEST(FormatExact, MatchesThePrecisionSearchByteForByte) {
  std::vector<double> values = {0.0,    -0.0,   1.0,    -1.0,  100.0, 120.0,
                                1000.0, 0.001,  10.5,   0.25,  1e22,  1e-22,
                                1e-300, 1e300,  0.1,    1.0 / 3.0,
                                0.1 + 0.2,      100.0 / 7.0,   42.328};
  Rng rng(0xF0F0);
  for (int i = 0; i < 5000; ++i) {
    const double mag = std::pow(10.0, rng.uniform(-12.0, 12.0));
    values.push_back(rng.uniform(-1.0, 1.0) * mag);
    values.push_back(std::floor(rng.uniform(0.0, 1e6)));      // integers
    values.push_back(std::floor(rng.uniform(0.0, 1e4)) * 10); // trailing zeros
  }
  values.push_back(std::numeric_limits<double>::infinity());
  values.push_back(-std::numeric_limits<double>::infinity());
  values.push_back(std::numeric_limits<double>::quiet_NaN());
  values.push_back(std::numeric_limits<double>::denorm_min());
  values.push_back(std::numeric_limits<double>::max());
  values.push_back(std::numeric_limits<double>::min());
  for (const double v : values)
    EXPECT_EQ(obs::format_exact(v), format_exact_reference(v)) << v;
}

// ------------------------------------------------------------- producers ----

TEST(TimelineProducers, RaplSimulateEmitsMonotoneSeries) {
  sim::MachineSpec spec;
  sim::RaplControllerSim rapl(spec);
  obs::Timeline tl;
  rapl.set_timeline(&tl);
  sim::RaplControllerOptions opt;
  opt.steps = 50;
  const auto w = *workloads::find_benchmark("CoMD");
  (void)rapl.simulate(w, 24, parallel::AffinityPolicy::kScatter, 68.0,
                      Watts(80.0), opt);
  // The time axis must keep advancing across simulate() calls.
  (void)rapl.simulate(w, 24, parallel::AffinityPolicy::kScatter, 68.0,
                      Watts(60.0), opt);

  const auto caps = tl.samples("rapl.cap_w");
  ASSERT_EQ(caps.size(), 2u);
  EXPECT_DOUBLE_EQ(caps[0].value, 80.0);
  EXPECT_DOUBLE_EQ(caps[1].value, 60.0);
  EXPECT_GT(caps[1].t_s, caps[0].t_s);

  const auto power = tl.samples("rapl.power_w");
  ASSERT_EQ(power.size(), 100u);
  for (std::size_t i = 1; i < power.size(); ++i)
    EXPECT_GE(power[i].t_s, power[i - 1].t_s);
  const auto rel = tl.summary("rapl.freq_rel");
  EXPECT_GT(rel.min, 0.0);
  EXPECT_LE(rel.max, 1.0);
}

TEST(TimelineProducers, TelemetryBridgeRecordsPerNodeSeries) {
  sim::SimExecutor ex{sim::MachineSpec{}, no_noise()};
  const auto app = *workloads::find_benchmark("CoMD");
  sim::ClusterConfig cfg;
  cfg.nodes = 2;
  const auto m = ex.run_exact(app, cfg);

  runtime::TelemetryOptions topt;
  topt.noise_sigma = 0.0;
  const runtime::Telemetry telemetry(topt);
  obs::Timeline tl;
  runtime::Telemetry::to_timeline(tl, telemetry.record(m, cfg.node.threads),
                                  10.0);
  const auto cpu = tl.samples("node0.cpu_w");
  ASSERT_FALSE(cpu.empty());
  EXPECT_GE(cpu.front().t_s, 10.0);  // honors the t0 offset
  EXPECT_GT(cpu.front().value, 0.0);
  EXPECT_FALSE(tl.samples("node1.freq_ghz").empty());
}

TEST(TimelineProducers, MeterRecordsTruthEvenWhenNoiseDisabled) {
  sim::SimExecutor ex{sim::MachineSpec{}, no_noise()};
  obs::Timeline tl;
  ex.meter().set_timeline(&tl);
  ex.meter().set_sample_time(42.0);
  const auto app = *workloads::find_benchmark("EP");
  const auto m = ex.run(app, sim::ClusterConfig{});
  const auto pts = tl.samples("meter.power_w");
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_DOUBLE_EQ(pts[0].t_s, 42.0);
  EXPECT_DOUBLE_EQ(pts[0].value, m.avg_power.value());
}

// ------------------------------------------------- queue + flight recorder ----

struct RecordedRun {
  runtime::QueueReport report;
  obs::Timeline timeline;
};

void run_recorded(Watts budget, RecordedRun& out,
                  obs::ObsSession* session = nullptr,
                  obs::MemorySink* sink = nullptr) {
  sim::SimExecutor ex{sim::MachineSpec{}, no_noise()};
  core::ClipScheduler sched{ex, workloads::training_benchmarks()};
  runtime::QueueOptions opt;
  opt.cluster_budget = budget;
  runtime::PowerAwareJobQueue queue(ex, sched, opt);
  if (session != nullptr) {
    if (sink != nullptr) session->set_sink(sink);
    queue.set_observer(session);
  }
  queue.set_timeline(&out.timeline);
  out.report = queue.run(workloads::paper_benchmarks());
}

TEST(QueueTimeline, DetachedRunIsByteIdentical) {
  runtime::QueueOptions opt;
  opt.cluster_budget = Watts(900.0);
  const auto jobs = workloads::paper_benchmarks();

  sim::SimExecutor ex1{sim::MachineSpec{}, no_noise()};
  core::ClipScheduler sched1{ex1, workloads::training_benchmarks()};
  runtime::PowerAwareJobQueue plain(ex1, sched1, opt);
  const auto without = plain.run(jobs);

  sim::SimExecutor ex2{sim::MachineSpec{}, no_noise()};
  core::ClipScheduler sched2{ex2, workloads::training_benchmarks()};
  runtime::PowerAwareJobQueue recorded(ex2, sched2, opt);
  obs::Timeline tl;
  recorded.set_timeline(&tl);
  const auto with = recorded.run(jobs);

  // The flight recorder observes; it must never perturb the decisions.
  EXPECT_EQ(fingerprint(without), fingerprint(with));
  EXPECT_GT(tl.total_samples(), 0u);
}

TEST(QueueTimeline, RecordsQueueAndPerNodeSeries) {
  RecordedRun run;
  run_recorded(Watts(900.0), run);
  const auto& tl = run.timeline;

  // Scheduling passes leave depth/free-watts traces.
  EXPECT_FALSE(tl.samples("queue.depth").empty());
  EXPECT_FALSE(tl.samples("queue.running").empty());
  EXPECT_FALSE(tl.samples("budget.free_w").empty());
  const auto depth = tl.summary("queue.depth");
  EXPECT_DOUBLE_EQ(depth.min, 0.0);  // the queue drains

  // Every job leaves start/finish events.
  const auto events = tl.events("job");
  std::size_t starts = 0;
  std::size_t finishes = 0;
  for (const auto& e : events) {
    if (e.label.rfind("start ", 0) == 0) ++starts;
    if (e.label.rfind("finish ", 0) == 0) ++finishes;
  }
  EXPECT_EQ(starts, run.report.jobs.size());
  EXPECT_EQ(finishes, run.report.jobs_completed());

  // Per-node power steps exist and end at zero (nodes freed at the end).
  const auto p0 = tl.samples("node0.power_w");
  ASSERT_FALSE(p0.empty());
  EXPECT_DOUBLE_EQ(p0.back().value, 0.0);
  EXPECT_FALSE(tl.samples("node0.cap_w").empty());

  // The per-node caps never exceed the budget (step-function check).
  EXPECT_DOUBLE_EQ(
      tl.time_above("node0.cap_w", 900.0, 0.0, run.report.makespan_s), 0.0);

  // The final violation accounting lands on the timeline too.
  const auto viol = tl.samples("budget.violation_s");
  ASSERT_EQ(viol.size(), 1u);
  EXPECT_EQ(viol[0].value, run.report.violation_s);
}

// ------------------------------------------------------ run record/report ----

TEST(RunReport, RecordAndReportAreByteStable) {
  RecordedRun run;
  obs::ObsSession session;
  obs::MemorySink sink;
  run_recorded(Watts(900.0), run, &session, &sink);

  const auto d1 = temp_path("runrec1");
  const auto d2 = temp_path("runrec2");
  runtime::write_run_record(d1, Watts(900.0), run.report, run.timeline,
                            sink.spans(), &session.metrics());
  runtime::write_run_record(d2, Watts(900.0), run.report, run.timeline,
                            sink.spans(), &session.metrics());
  for (const char* f :
       {runtime::RunRecordFiles::kTimeline, runtime::RunRecordFiles::kJobs,
        runtime::RunRecordFiles::kSummary, runtime::RunRecordFiles::kSpans})
    EXPECT_EQ(slurp(d1 / f), slurp(d2 / f)) << f;

  // Rendering is a pure function of the record directory.
  const std::string md1 = runtime::render_markdown_report(d1);
  const std::string md2 = runtime::render_markdown_report(d1);
  EXPECT_EQ(md1, md2);
  EXPECT_NE(md1.find("# CLIP run report"), std::string::npos);
  EXPECT_NE(md1.find("| jobs completed | 10/10 |"), std::string::npos);

  const std::string js = runtime::render_json_report(d1);
  EXPECT_EQ(js, runtime::render_json_report(d1));
  // violation_s round-trips bit-for-bit through the record.
  EXPECT_NE(js.find("\"violation_s\": " +
                    obs::format_exact(run.report.violation_s)),
            std::string::npos);
  EXPECT_NE(js.find("\"jobs_completed\": 10"), std::string::npos);

  std::filesystem::remove_all(d1);
  std::filesystem::remove_all(d2);
}

TEST(RunReport, RejectsMissingDirectory) {
  EXPECT_THROW(
      (void)runtime::render_markdown_report(temp_path("does_not_exist")),
      PreconditionError);
}

// ------------------------------------------------------ prometheus export ----

TEST(Prometheus, RendersAllThreeKindsDeterministically) {
  obs::MetricsRegistry reg;
  reg.counter("sim.runs").add(42);
  reg.gauge("queue.free_w").set(123.5);
  auto& h = reg.histogram("queue.job_wait_s",
                          obs::HistogramSpec{{1.0, 2.0, 4.0}});
  h.record(0.5);
  h.record(2.0);   // exactly on a bucket edge -> le="2" bucket
  h.record(100.0); // overflow

  const std::string text = reg.render_prometheus();
  EXPECT_EQ(text, reg.render_prometheus());

  EXPECT_NE(text.find("# TYPE sim_runs counter\nsim_runs 42\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE queue_free_w gauge\nqueue_free_w 123.5\n"),
            std::string::npos);
  // Cumulative buckets; +Inf equals _count.
  EXPECT_NE(text.find("queue_job_wait_s_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("queue_job_wait_s_bucket{le=\"2\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("queue_job_wait_s_bucket{le=\"4\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("queue_job_wait_s_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("queue_job_wait_s_sum 102.5\n"), std::string::npos);
  EXPECT_NE(text.find("queue_job_wait_s_count 3\n"), std::string::npos);
}

TEST(Prometheus, SanitizesHostileMetricNames) {
  obs::MetricsRegistry reg;
  reg.counter("9lives.of-a.cat").add(1);
  const std::string text = reg.render_prometheus();
  EXPECT_NE(text.find("# TYPE _9lives_of_a_cat counter\n_9lives_of_a_cat 1\n"),
            std::string::npos);
}

TEST(Prometheus, EmitsHelpBeforeTypeForEveryFamily) {
  obs::MetricsRegistry reg;
  reg.counter("sim.runs").add(1);
  reg.gauge("queue.free_w").set(2.0);
  reg.histogram("queue.job_wait_s", obs::HistogramSpec{{1.0}}).record(0.5);
  const std::string text = reg.render_prometheus();

  // Each family opens with a HELP line naming the dotted registry source,
  // immediately followed by its TYPE line.
  EXPECT_NE(text.find("# HELP sim_runs clip counter sim.runs\n"
                      "# TYPE sim_runs counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("# HELP queue_free_w clip gauge queue.free_w\n"
                      "# TYPE queue_free_w gauge\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("# HELP queue_job_wait_s clip histogram queue.job_wait_s\n"
                "# TYPE queue_job_wait_s histogram\n"),
      std::string::npos);

  // Exactly one HELP per TYPE: three families, three pairs.
  std::size_t help = 0, type = 0;
  for (std::size_t p = text.find("# HELP"); p != std::string::npos;
       p = text.find("# HELP", p + 1))
    ++help;
  for (std::size_t p = text.find("# TYPE"); p != std::string::npos;
       p = text.find("# TYPE", p + 1))
    ++type;
  EXPECT_EQ(help, 3u);
  EXPECT_EQ(type, 3u);
}

TEST(Prometheus, DeduplicatesCollidingSanitizedNames) {
  // Sanitizing is lossy: all three registry names map to `queue_depth`.
  // Duplicate families are an invalid exposition, so later families take
  // deterministic _2/_3 suffixes (counters render before gauges; within a
  // kind, sorted registry-name order: '.' < '_').
  obs::MetricsRegistry reg;
  reg.counter("queue.depth").add(1);
  reg.counter("queue_depth").add(2);
  reg.gauge("queue-depth").set(3.0);
  const std::string text = reg.render_prometheus();
  EXPECT_NE(text.find("# TYPE queue_depth counter\nqueue_depth 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE queue_depth_2 counter\nqueue_depth_2 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE queue_depth_3 gauge\nqueue_depth_3 3\n"),
            std::string::npos);
  // HELP preserves the original dotted names, so each scraped family can
  // be traced back to its registry series.
  EXPECT_NE(text.find("# HELP queue_depth_2 clip counter queue_depth\n"),
            std::string::npos);
  EXPECT_NE(text.find("# HELP queue_depth_3 clip gauge queue-depth\n"),
            std::string::npos);
}

TEST(Prometheus, DedupSuffixNeverStealsALaterFamilyName) {
  // `a.b` collides with `a_b`; the de-dup suffix for `a_b` must skip
  // `a_b_2` because a real family of that name renders later.
  obs::MetricsRegistry reg;
  reg.counter("a.b").add(1);
  reg.counter("a_b").add(2);
  reg.counter("a_b_2").add(3);
  const std::string text = reg.render_prometheus();
  EXPECT_NE(text.find("# TYPE a_b counter\na_b 1\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE a_b_3 counter\na_b_3 2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE a_b_2 counter\na_b_2 3\n"), std::string::npos);
}

TEST(Histogram, BucketCountsIncludeOverflow) {
  obs::Histogram h(obs::HistogramSpec{{10.0, 20.0}});
  h.record(5.0);
  h.record(10.0);   // inclusive upper bound -> first bucket
  h.record(15.0);
  h.record(1000.0); // overflow
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
}

}  // namespace
}  // namespace clip
