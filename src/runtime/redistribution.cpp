#include "runtime/redistribution.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/strings.hpp"
#include "workloads/phases.hpp"

namespace clip::runtime {

void RedistributionOptions::validate() const {
  CLIP_REQUIRE(period_s > 0.0, "redist.period_s must be positive (got " +
                                   format_double(period_s, 3) + " s)");
  CLIP_REQUIRE(reaction_s >= 0.0, "redist.reaction_s must be non-negative");
  CLIP_REQUIRE(headroom_frac >= 0.0 && headroom_frac < 1.0,
               "redist.headroom_frac must be in [0, 1)");
  CLIP_REQUIRE(min_claw_w > 0.0, "redist.min_claw_w must be positive");
  CLIP_REQUIRE(min_grant_w > 0.0, "redist.min_grant_w must be positive");
  CLIP_REQUIRE(min_gain_s >= 0.0, "redist.min_gain_s must be non-negative");
  CLIP_REQUIRE(window_samples >= 1,
               "redist.window_samples must be at least 1");
  CLIP_REQUIRE(shift_step_w > 0.0, "redist.shift_step_w must be positive");
}

namespace {

std::string node_series(int node) {
  return "node" + std::to_string(node) + ".power_w";
}

}  // namespace

SlackDetector::SlackDetector(const RedistributionOptions& options)
    : options_(options),
      timeline_(obs::TimelineOptions{
          .ring_capacity = static_cast<std::size_t>(options.window_samples)}) {
  options.validate();
}

void SlackDetector::observe(int node, double t_s, double draw_w) {
  timeline_.record(node_series(node), t_s, draw_w);
}

double SlackDetector::node_slack_w(int node, double cap_w) const {
  const std::vector<obs::TimelinePoint> window =
      timeline_.samples(node_series(node));
  if (window.empty()) return 0.0;  // never claw on no evidence
  double max_draw = 0.0;
  for (const auto& p : window) max_draw = std::max(max_draw, p.value);
  const double slack = cap_w - max_draw - options_.headroom_frac * cap_w;
  return std::max(slack, 0.0);
}

PhaseSignal SlackDetector::phase_at(const workloads::WorkloadSignature& app,
                                    double start_s, double end_s,
                                    double t_s) {
  PhaseSignal signal;
  signal.memory_bound = app.memory_boundedness >= 0.5;
  const auto phased = workloads::find_phased(app.name + "-phased");
  if (!phased.has_value() || end_s <= start_s) return signal;
  // Map elapsed run fraction onto the phase sequence by work weight: a
  // phase's wall share tracks its work share to first order (the phases
  // execute under one shared node configuration here).
  const double elapsed =
      std::clamp((t_s - start_s) / (end_s - start_s), 0.0, 1.0);
  double cumulative = 0.0;
  for (const auto& phase : phased->phases) {
    cumulative += phase.weight;
    if (elapsed < cumulative || &phase == &phased->phases.back()) {
      signal.known = true;
      signal.phase = phase.name;
      signal.memory_bound = phase.signature.memory_boundedness >= 0.5;
      break;
    }
  }
  return signal;
}

Redistributor::Redistributor(const RedistributionOptions& options)
    : options_(options) {
  options.validate();
}

double Redistributor::claw_w(double reserved_w, double slack_w,
                             double floor_w) const {
  const double claw = std::min(slack_w, reserved_w - floor_w);
  return claw >= options_.min_claw_w ? claw : 0.0;
}

const RegrantCandidate* Redistributor::pick(
    const std::vector<RegrantCandidate>& candidates) const {
  const RegrantCandidate* best = nullptr;
  for (const auto& c : candidates) {
    if (c.gain_s < options_.min_gain_s) continue;
    if (best == nullptr || c.gain_s > best->gain_s) best = &c;
  }
  return best;
}

}  // namespace clip::runtime
