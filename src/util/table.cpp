#include "util/table.hpp"

#include <algorithm>
#include <ostream>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace clip {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  CLIP_REQUIRE(!header_.empty(), "table needs at least one column");
}

void Table::set_title(std::string title) { title_ = std::move(title); }

void Table::add_row(std::vector<std::string> cells) {
  CLIP_REQUIRE(cells.size() == header_.size(),
               "row width must match header width");
  rows_.push_back(std::move(cells));
}

Table::Cell::Cell(double v) : text(format_double(v)) {}
Table::Cell::Cell(int v) : text(std::to_string(v)) {}
Table::Cell::Cell(std::size_t v) : text(std::to_string(v)) {}

void Table::add(std::initializer_list<Cell> cells) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (const auto& c : cells) row.push_back(c.text);
  add_row(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      os << pad_right(row[c], width[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c) os << "  ";
    os << std::string(width[c], '-');
  }
  os << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace clip
