// Prometheus text exposition rendering for MetricsRegistry.
//
// Follows the text format contract: one `# TYPE` line per metric family,
// histogram buckets are *cumulative* and keyed by inclusive upper bound
// (`le`), and every histogram carries the implicit `le="+Inf"` bucket equal
// to `_count`. Our metric names use dots (`sim.runs`); Prometheus names are
// restricted to [a-zA-Z0-9_:], so dots (and anything else outside that set)
// become underscores.
#include <cctype>
#include <sstream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/timeline.hpp"

namespace clip::obs {

namespace {

std::string sanitize_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const auto uc = static_cast<unsigned char>(c);
    out.push_back(std::isalnum(uc) || c == '_' || c == ':' ? c : '_');
  }
  if (!out.empty() && std::isdigit(static_cast<unsigned char>(out.front())))
    out.insert(out.begin(), '_');
  return out;
}

}  // namespace

std::string MetricsRegistry::render_prometheus() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, c] : counters_) {
    const std::string n = sanitize_name(name);
    out << "# TYPE " << n << " counter\n" << n << ' ' << c->value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    const std::string n = sanitize_name(name);
    out << "# TYPE " << n << " gauge\n"
        << n << ' ' << format_exact(g->value()) << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    const std::string n = sanitize_name(name);
    out << "# TYPE " << n << " histogram\n";
    const auto counts = h->bucket_counts();
    const auto& bounds = h->spec().bounds;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      cum += counts[i];
      out << n << "_bucket{le=\"" << format_exact(bounds[i]) << "\"} " << cum
          << '\n';
    }
    cum += counts.back();
    out << n << "_bucket{le=\"+Inf\"} " << cum << '\n'
        << n << "_sum " << format_exact(h->sum()) << '\n'
        << n << "_count " << h->count() << '\n';
  }
  return out.str();
}

}  // namespace clip::obs
