// Sensitivity analysis — is the reproduction's conclusion (CLIP beats the
// baselines under power bounds) an artifact of the simulator's calibration?
// Perturb every load-bearing machine parameter by ±20% and re-run the
// core comparison: the *ordering* must survive even where the magnitudes
// move. This is the simulation-study analogue of the paper's real-hardware
// validity argument.
#include <functional>
#include <iostream>

#include "bench_common.hpp"
#include "core/scheduler.hpp"
#include "util/strings.hpp"

using namespace clip;

namespace {

struct Variant {
  std::string name;
  std::function<void(sim::MachineSpec&)> tweak;
};

double mean_clip_over_allin(const sim::MachineSpec& spec) {
  sim::MeterOptions quiet;
  quiet.enabled = false;
  sim::SimExecutor ex(spec, quiet);
  core::ClipScheduler clip(ex, workloads::training_benchmarks());
  baselines::AllInScheduler all_in(spec);
  double ratio_sum = 0.0;
  int count = 0;
  for (const auto& w : workloads::paper_benchmarks()) {
    for (double fraction : {0.5, 0.75, 1.0}) {
      const Watts budget(spec.max_cluster_w() * fraction);
      const double t_clip =
          ex.run_exact(w, clip.schedule(w, budget).cluster).time.value();
      const double t_all =
          ex.run_exact(w, all_in.plan(w, budget)).time.value();
      ratio_sum += t_all / t_clip;
      ++count;
    }
  }
  return ratio_sum / count;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchContext ctx(argc, argv);

  const Variant variants[] = {
      {"baseline calibration", [](sim::MachineSpec&) {}},
      {"NUMA penalty +20%",
       [](sim::MachineSpec& s) { s.remote_numa_penalty *= 1.2; }},
      {"NUMA penalty -20%",
       [](sim::MachineSpec& s) { s.remote_numa_penalty *= 0.8; }},
      {"socket bandwidth +20%",
       [](sim::MachineSpec& s) { s.socket_bw_gbps *= 1.2; }},
      {"socket bandwidth -20%",
       [](sim::MachineSpec& s) { s.socket_bw_gbps *= 0.8; }},
      {"core power +20%",
       [](sim::MachineSpec& s) { s.core_max_w *= 1.2; }},
      {"core power -20%",
       [](sim::MachineSpec& s) { s.core_max_w *= 0.8; }},
      {"power exponent 1.8",
       [](sim::MachineSpec& s) { s.power_exponent = 1.8; }},
      {"power exponent 2.6",
       [](sim::MachineSpec& s) { s.power_exponent = 2.6; }},
      {"socket base +25%",
       [](sim::MachineSpec& s) { s.socket_base_w *= 1.25; }},
      {"memory activity power +25%",
       [](sim::MachineSpec& s) { s.mem_activity_w_per_socket *= 1.25; }},
  };

  Table t({"model variant", "mean CLIP speedup vs All-In",
           "conclusion holds"});
  t.set_title(
      "Sensitivity: mean CLIP/All-In speedup across the Table II suite "
      "and three budget levels, under model-parameter perturbations");
  for (const auto& v : variants) {
    sim::MachineSpec spec;
    v.tweak(spec);
    const double speedup = mean_clip_over_allin(spec);
    t.add_row({v.name, format_double(speedup, 3) + "x",
               speedup >= 1.0 ? "yes" : "NO"});
  }
  ctx.print(t);
  std::cout << "The advantage's magnitude moves with the calibration; its "
               "direction does not — the reproduction's conclusions are "
               "not a knife-edge artifact of the chosen constants.\n";
  return 0;
}
