// Tests for the live observability plane: the embeddable telemetry server
// (socketless routing and real-socket integration over every endpoint), the
// causal trace context threaded queue → journal → run report, the
// replay-suppression contract during crash recovery, and the declarative
// SLO/alert engine. Byte-identity assertions pin the determinism contract:
// a run with the whole plane attached reports exactly what a detached run
// reports.
#include <gtest/gtest.h>

#include <unistd.h>
#include <filesystem>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/scheduler.hpp"
#include "obs/obs.hpp"
#include "runtime/journal.hpp"
#include "runtime/launcher.hpp"
#include "runtime/queue.hpp"
#include "runtime/run_report.hpp"
#include "sim/executor.hpp"
#include "sim/power_meter.hpp"
#include "util/check.hpp"
#include "workloads/catalog.hpp"

namespace clip {
namespace {

namespace fs = std::filesystem;

sim::MeterOptions no_noise() {
  sim::MeterOptions m;
  m.enabled = false;
  return m;
}

/// Unique per test case *and* process (ctest -j runs cases concurrently).
fs::path temp_dir(const std::string& stem) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return fs::temp_directory_path() /
         (stem + "." + info->name() + "." + std::to_string(::getpid()));
}

/// Bit-exact textual fingerprint of a QueueReport's *scheduling* outcome
/// (hexfloat doubles; trace ids deliberately excluded — they are metadata
/// the byte-identity contract says must not move the schedule).
std::string fingerprint(const runtime::QueueReport& r) {
  std::ostringstream os;
  os << std::hexfloat;
  os << r.makespan_s << '|' << r.mean_turnaround_s << '|'
     << r.total_energy_j << '|' << r.node_seconds_used << '|'
     << r.violation_s << '|' << r.violation_ws << '|' << r.retries << '|'
     << r.jobs_failed;
  for (const auto& j : r.jobs)
    os << '\n'
       << j.app << ',' << j.start_s << ',' << j.end_s << ',' << j.nodes
       << ',' << j.budget_w << ',' << j.power_w << ',' << j.attempts << ','
       << j.completed;
  return os.str();
}

std::vector<runtime::QueueJob> paper_jobs() {
  std::vector<runtime::QueueJob> jobs;
  for (const auto& a : workloads::paper_benchmarks()) jobs.push_back({a, 0});
  return jobs;
}

/// Shared substrate: one executor/scheduler pair with a warmed knowledge
/// DB, so every run in this suite schedules from identical cached profiles.
struct Cluster {
  sim::SimExecutor ex{sim::MachineSpec{}, no_noise()};
  core::ClipScheduler sched{ex, workloads::training_benchmarks()};
  runtime::QueueOptions opt;
  std::vector<runtime::QueueJob> jobs = paper_jobs();

  Cluster() {
    opt.cluster_budget = Watts(700.0);
    runtime::PowerAwareJobQueue warm(ex, sched, opt);
    (void)warm.run(jobs);
  }

  struct Run {
    runtime::QueueReport report;
    std::string fp;
    std::string timeline_csv;
  };

  Run run(const runtime::QueueOptions& options,
          obs::ObsSession* session = nullptr,
          runtime::Journal* journal = nullptr,
          obs::Timeline* timeline = nullptr) {
    runtime::QueueEventLoop loop(ex, sched, options, jobs);
    obs::Timeline local;
    obs::Timeline* tl = timeline != nullptr ? timeline : &local;
    loop.set_timeline(tl);
    if (session != nullptr) loop.set_observer(session);
    if (journal != nullptr) loop.set_journal(journal);
    Run out;
    out.report = loop.run();
    out.fp = fingerprint(out.report);
    out.timeline_csv = tl->to_csv_string();
    return out;
  }

  Run recover(const runtime::QueueOptions& options, runtime::Journal& journal,
              obs::ObsSession* session = nullptr) {
    runtime::QueueEventLoop loop(ex, sched, options, jobs);
    obs::Timeline timeline;
    loop.set_timeline(&timeline);
    if (session != nullptr) loop.set_observer(session);
    Run out;
    out.report = loop.recover(journal);
    out.fp = fingerprint(out.report);
    out.timeline_csv = timeline.to_csv_string();
    return out;
  }
};

Cluster& cluster() {
  static Cluster c;
  return c;
}

// ------------------------------------------------- telemetry server ----

TEST(TelemetryServer, HealthzFollowsTheDegradedModeMachine) {
  obs::TelemetryServer server(obs::TelemetryServerOptions{});
  // Before any publish: default snapshot is NORMAL.
  EXPECT_NE(server.respond("/healthz").find("200 OK"), std::string::npos);

  obs::StatusSnapshot snap;
  snap.mode = "METER_BLACKOUT";
  server.publish(snap);
  const std::string degraded = server.respond("/healthz");
  EXPECT_NE(degraded.find("503 Service Unavailable"), std::string::npos);
  EXPECT_NE(degraded.find("degraded mode=METER_BLACKOUT"),
            std::string::npos);

  snap.mode = "NORMAL";
  server.publish(snap);
  EXPECT_NE(server.respond("/healthz").find("ok mode=NORMAL"),
            std::string::npos);
}

TEST(TelemetryServer, StatusReflectsTheLatestPublishedSnapshot) {
  obs::TelemetryServer server(obs::TelemetryServerOptions{});
  obs::StatusSnapshot snap;
  snap.now_s = 12.5;
  snap.queue_depth = 3;
  snap.running_jobs = 2;
  snap.free_watts = 140.0;
  snap.mode = "BUDGET_BROWNOUT";
  snap.journal_seq = 42;
  snap.jobs_completed = 5;
  snap.jobs_failed = 1;
  snap.run_active = true;
  server.publish(snap);

  const std::string body = obs::http_body(server.respond("/status"));
  EXPECT_NE(body.find("\"now_s\":12.5"), std::string::npos);
  EXPECT_NE(body.find("\"queue_depth\":3"), std::string::npos);
  EXPECT_NE(body.find("\"running_jobs\":2"), std::string::npos);
  // format_exact renders 140 in shortest-exact form ("1.4e+02").
  EXPECT_NE(body.find("\"free_watts\":1.4e+02"), std::string::npos);
  EXPECT_NE(body.find("\"mode\":\"BUDGET_BROWNOUT\""), std::string::npos);
  EXPECT_NE(body.find("\"journal_seq\":42"), std::string::npos);
  EXPECT_NE(body.find("\"jobs_completed\":5"), std::string::npos);
  EXPECT_NE(body.find("\"jobs_failed\":1"), std::string::npos);
  EXPECT_NE(body.find("\"run_active\":true"), std::string::npos);
}

TEST(TelemetryServer, MetricsEndpointSnapshotsTheRegistry) {
  obs::MetricsRegistry reg;
  reg.counter("queue.jobs_started").add(7);
  obs::TelemetryServerOptions opt;
  opt.metrics = &reg;
  obs::TelemetryServer server(opt);
  const std::string resp = server.respond("/metrics");
  EXPECT_NE(resp.find("200 OK"), std::string::npos);
  EXPECT_NE(resp.find("queue_jobs_started 7"), std::string::npos);
  EXPECT_NE(resp.find("# HELP queue_jobs_started"), std::string::npos);

  obs::TelemetryServer bare(obs::TelemetryServerOptions{});
  EXPECT_NE(bare.respond("/metrics").find("200 OK"), std::string::npos);
  EXPECT_EQ(obs::http_body(bare.respond("/metrics")), "");
}

TEST(TelemetryServer, TimelineEndpointTailsOneSeries) {
  obs::Timeline tl;
  for (int i = 0; i < 10; ++i)
    tl.record("queue.depth", static_cast<double>(i), static_cast<double>(i));
  tl.event("job", 1.0, "start A");
  obs::TelemetryServerOptions opt;
  opt.timeline = &tl;
  obs::TelemetryServer server(opt);

  const std::string tail =
      obs::http_body(server.respond("/timeline?series=queue.depth&n=3"));
  // Newest three samples survive the tail cap.
  EXPECT_EQ(tail.find("\"t_s\":6"), std::string::npos);
  EXPECT_NE(tail.find("\"t_s\":7"), std::string::npos);
  EXPECT_NE(tail.find("\"t_s\":9"), std::string::npos);

  const std::string events =
      obs::http_body(server.respond("/timeline?series=job"));
  EXPECT_NE(events.find("\"kind\":\"event\""), std::string::npos);
  EXPECT_NE(events.find("\"label\":\"start A\""), std::string::npos);

  EXPECT_EQ(obs::http_body(server.respond("/timeline?series=nope")), "");
  EXPECT_NE(server.respond("/timeline").find("400 Bad Request"),
            std::string::npos);
  EXPECT_NE(server.respond("/nothing").find("404 Not Found"),
            std::string::npos);
}

TEST(TelemetryServer, ServesAllFourEndpointsOverRealSockets) {
  obs::MetricsRegistry reg;
  reg.counter("sim.runs").add(3);
  obs::Timeline tl;
  tl.record("node0.power_w", 1.0, 95.0);
  obs::TelemetryServerOptions opt;
  opt.metrics = &reg;
  opt.timeline = &tl;
  obs::TelemetryServer server(opt);
  ASSERT_GT(server.port(), 0);  // ephemeral bind succeeded

  const std::string metrics =
      obs::http_get("127.0.0.1", server.port(), "/metrics");
  EXPECT_NE(metrics.find("sim_runs 3"), std::string::npos);

  const std::string health =
      obs::http_get("127.0.0.1", server.port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);

  const std::string status =
      obs::http_get("127.0.0.1", server.port(), "/status");
  EXPECT_NE(status.find("\"mode\":\"NORMAL\""), std::string::npos);

  const std::string timeline = obs::http_get(
      "127.0.0.1", server.port(), "/timeline?series=node0.power_w");
  EXPECT_NE(timeline.find("\"value\":95"), std::string::npos);

  EXPECT_EQ(server.requests_served(), 4u);
  server.stop();  // idempotent with the destructor
}

TEST(TelemetryServer, QueueRunOwnsAServerAndPublishesFinalStatus) {
  Cluster& c = cluster();
  runtime::QueueOptions opt = c.opt;
  opt.telemetry_port = 0;  // ephemeral
  runtime::QueueEventLoop loop(c.ex, c.sched, opt, c.jobs);
  obs::ObsSession session;
  loop.set_observer(&session);
  const auto report = loop.run();

  const obs::TelemetryServer* server = loop.telemetry_server();
  ASSERT_NE(server, nullptr);
  ASSERT_GT(server->port(), 0);
  const std::string body = obs::http_body(
      obs::http_get("127.0.0.1", server->port(), "/status"));
  EXPECT_NE(body.find("\"run_active\":false"), std::string::npos);
  EXPECT_NE(body.find("\"jobs_completed\":" +
                      std::to_string(report.jobs_completed())),
            std::string::npos);
  EXPECT_NE(body.find("\"queue_depth\":0"), std::string::npos);
  // /metrics serves the live session registry.
  const std::string metrics = obs::http_body(
      obs::http_get("127.0.0.1", server->port(), "/metrics"));
  EXPECT_NE(metrics.find("queue_jobs_started"), std::string::npos);
}

TEST(TelemetryServer, AttachmentKeepsTheRunByteIdentical) {
  Cluster& c = cluster();
  const Cluster::Run plain = c.run(c.opt);

  runtime::QueueOptions live = c.opt;
  live.telemetry_port = 0;
  obs::ObsSession session;
  const Cluster::Run served = c.run(live, &session);
  EXPECT_EQ(plain.fp, served.fp);
  EXPECT_EQ(plain.timeline_csv, served.timeline_csv);

  // The host-time decision-latency histogram exists only on the live
  // plane; queue metrics stay deterministic without it.
  const auto* h = session.metrics().find_histogram("queue.decision_latency_us");
  ASSERT_NE(h, nullptr);
  EXPECT_GT(h->count(), 0u);

  obs::ObsSession detached_session;
  (void)c.run(c.opt, &detached_session);
  EXPECT_EQ(
      detached_session.metrics().find_histogram("queue.decision_latency_us"),
      nullptr);
}

// ------------------------------------------------------ causal traces ----

TEST(TraceContext, MintsDeterministicIdsAndParsesThemBack) {
  Rng a(0x7C11u);
  Rng b(0x7C11u);
  const auto t1 = obs::TraceContext::make(a);
  const auto t2 = obs::TraceContext::make(b);
  EXPECT_TRUE(t1.valid());
  EXPECT_EQ(t1.trace_id, t2.trace_id);  // same seed, same id
  EXPECT_EQ(t1.hex().size(), 16u);

  const auto parsed = obs::TraceContext::parse_hex(t1.hex());
  EXPECT_EQ(parsed.trace_id, t1.trace_id);
  EXPECT_FALSE(obs::TraceContext::parse_hex("xyz").valid());
  EXPECT_FALSE(obs::TraceContext::parse_hex("0123456789abcde").valid());

  // Span ids: stable per subsystem, distinct across subsystems.
  EXPECT_EQ(t1.span_id("queue"), t2.span_id("queue"));
  EXPECT_NE(t1.span_id("queue"), t1.span_id("launcher"));
  EXPECT_FALSE(obs::TraceContext{}.valid());
}

TEST(Tracing, QueueMintsDistinctReproducibleIdsPerJob) {
  Cluster& c = cluster();
  runtime::QueueOptions traced = c.opt;
  traced.trace.enabled = true;
  const Cluster::Run r1 = c.run(traced);
  const Cluster::Run r2 = c.run(traced);

  std::set<std::string> ids;
  for (std::size_t j = 0; j < r1.report.jobs.size(); ++j) {
    const std::string& id = r1.report.jobs[j].trace_id;
    ASSERT_EQ(id.size(), 16u);
    EXPECT_TRUE(obs::TraceContext::parse_hex(id).valid());
    ids.insert(id);
    EXPECT_EQ(id, r2.report.jobs[j].trace_id);  // seeded: reproducible
  }
  EXPECT_EQ(ids.size(), r1.report.jobs.size());  // and distinct

  // Tracing is metadata only: the schedule is byte-identical to untraced.
  const Cluster::Run plain = c.run(c.opt);
  EXPECT_EQ(plain.fp, r1.fp);
  for (const auto& j : plain.report.jobs) EXPECT_TRUE(j.trace_id.empty());
}

TEST(Tracing, TraceTokensReachTimelineJournalAndSpans) {
  Cluster& c = cluster();
  runtime::QueueOptions traced = c.opt;
  traced.trace.enabled = true;
  obs::ObsSession session;
  obs::MemorySink sink;
  session.set_sink(&sink);
  runtime::Journal journal;
  obs::Timeline timeline;
  const Cluster::Run r = c.run(traced, &session, &journal, &timeline);
  const std::string id0 = r.report.jobs[0].trace_id;
  ASSERT_FALSE(id0.empty());

  // Flight-recorder job events carry the trace token.
  bool event_tagged = false;
  for (const auto& e : timeline.events("job"))
    event_tagged = event_tagged ||
                   e.label.find("trace=" + id0) != std::string::npos;
  EXPECT_TRUE(event_tagged);

  // Journal launch records carry it too (recovery correlates by id).
  bool journal_tagged = false;
  for (const auto& rec : journal.records())
    if (rec.kind == "launch")
      journal_tagged = journal_tagged ||
                       rec.payload.find("trace=" + id0) != std::string::npos;
  EXPECT_TRUE(journal_tagged);
  // The begin record pins the trace seed so a mismatched recovery fails.
  ASSERT_FALSE(journal.records().empty());
  EXPECT_NE(journal.records().front().payload.find("traceseed="),
            std::string::npos);

  // queue.try_start spans carry trace_id/span_id args.
  bool span_tagged = false;
  for (const auto& s : sink.spans())
    for (const auto& a : s.args)
      span_tagged = span_tagged || (a.key == "trace_id" && a.value == id0);
  EXPECT_TRUE(span_tagged);
}

TEST(Tracing, UntracedJournalBytesAreUnchanged) {
  // With tracing off the begin payload must not grow a traceseed token:
  // journals written before tracing existed stay replayable byte-for-byte.
  Cluster& c = cluster();
  runtime::Journal journal;
  (void)c.run(c.opt, nullptr, &journal);
  ASSERT_FALSE(journal.records().empty());
  EXPECT_EQ(journal.records().front().payload.find("traceseed="),
            std::string::npos);
  for (const auto& rec : journal.records())
    EXPECT_EQ(rec.payload.find("trace="), std::string::npos) << rec.kind;
}

TEST(Tracing, RecoveryRemintsIdenticalTraceIds) {
  Cluster& c = cluster();
  runtime::QueueOptions traced = c.opt;
  traced.trace.enabled = true;
  runtime::JournalOptions jopt;
  jopt.snapshot_every = 5;  // dense: guarantee a mid-run restore point
  runtime::Journal journal(jopt);
  const Cluster::Run ref = c.run(traced, nullptr, &journal);

  // Kill two records past the last snapshot: recovery restores + replays.
  runtime::Journal cut = journal;
  ASSERT_TRUE(cut.last_snapshot().has_value());
  ASSERT_LE(*cut.last_snapshot() + 2, cut.size());
  cut.truncate(*cut.last_snapshot() + 2);

  const Cluster::Run rec = c.recover(traced, cut);
  EXPECT_EQ(ref.fp, rec.fp);
  for (std::size_t j = 0; j < ref.report.jobs.size(); ++j)
    EXPECT_EQ(ref.report.jobs[j].trace_id, rec.report.jobs[j].trace_id);
}

TEST(Tracing, RecoveryRejectsAMismatchedTraceConfiguration) {
  Cluster& c = cluster();
  runtime::QueueOptions traced = c.opt;
  traced.trace.enabled = true;
  runtime::Journal journal;
  (void)c.run(traced, nullptr, &journal);
  journal.truncate(journal.size() - 1);  // leave the run "unfinished"
  // An untraced loop must refuse the traced journal loudly (begin-record
  // config check), not silently re-mint different ids.
  EXPECT_THROW((void)c.recover(c.opt, journal), PreconditionError);
}

TEST(Tracing, GroupSpansByTraceAssignsOneTrackPerTrace) {
  auto span = [](std::string name, int tid,
                 std::optional<std::string> trace) {
    obs::SpanRecord s;
    s.name = std::move(name);
    s.tid = tid;
    if (trace) s.args.push_back({"trace_id", *trace, false});
    return s;
  };
  const std::vector<obs::SpanRecord> grouped = obs::group_spans_by_trace({
      span("queue.try_start", 1, "aaaa"),
      span("profiler.run", 7, std::nullopt),
      span("queue.try_start", 2, "bbbb"),
      span("queue.requeue", 3, "aaaa"),
  });
  ASSERT_EQ(grouped.size(), 4u);
  EXPECT_EQ(grouped[0].tid, 8);  // first trace: max untraced tid + 1
  EXPECT_EQ(grouped[1].tid, 7);  // untraced span keeps its thread track
  EXPECT_EQ(grouped[2].tid, 9);  // second trace, first-appearance order
  EXPECT_EQ(grouped[3].tid, 8);  // same trace as span 0 → same track

  // The grouped spans still serialize to loadable Chrome-trace JSON.
  const std::string json = obs::chrome_trace_json(grouped);
  EXPECT_NE(json.find("\"tid\":8"), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":\"aaaa\""), std::string::npos);
}

TEST(Tracing, LauncherPropagatesTheTraceIntoItsSpan) {
  sim::SimExecutor ex{sim::MachineSpec{}, no_noise()};
  runtime::Launcher launcher(ex, workloads::training_benchmarks());
  obs::ObsSession session;
  obs::MemorySink sink;
  session.set_sink(&sink);
  launcher.set_observer(&session);
  ex.set_observer(&session);

  Rng rng(0x7C11u);
  const auto trace = obs::TraceContext::make(rng);
  runtime::JobSpec spec;
  spec.app = workloads::paper_benchmarks().front();
  spec.cluster_budget = Watts(500.0);
  (void)launcher.run(spec, trace);

  bool tagged = false;
  for (const auto& s : sink.spans()) {
    if (s.name != "runtime.job") continue;
    for (const auto& a : s.args)
      tagged = tagged || (a.key == "trace_id" && a.value == trace.hex());
  }
  EXPECT_TRUE(tagged);
}

TEST(Tracing, JobStoryReconstructsOneJobsRun) {
  Cluster& c = cluster();
  runtime::QueueOptions traced = c.opt;
  traced.trace.enabled = true;
  obs::ObsSession session;
  runtime::Journal journal;
  obs::Timeline timeline;
  const Cluster::Run r = c.run(traced, &session, &journal, &timeline);

  const fs::path dir = temp_dir("obs_live_story");
  runtime::write_run_record(dir, c.opt.cluster_budget, r.report, timeline,
                            {}, &session.metrics());
  journal.save(dir / runtime::RunRecordFiles::kJournal);

  const std::string story = runtime::render_job_story(dir, 0);
  const auto& job = r.report.jobs[0];
  EXPECT_NE(story.find("# Job story: " + job.app), std::string::npos);
  EXPECT_NE(story.find(job.trace_id), std::string::npos);
  EXPECT_NE(story.find("## Flight-recorder events"), std::string::npos);
  EXPECT_NE(story.find("start " + job.app), std::string::npos);
  EXPECT_NE(story.find("## Journal records"), std::string::npos);
  EXPECT_NE(story.find("**launch**"), std::string::npos);
  // Rendering is a pure function of the record directory.
  EXPECT_EQ(story, runtime::render_job_story(dir, 0));
  EXPECT_THROW((void)runtime::render_job_story(dir, 999), PreconditionError);
  fs::remove_all(dir);
}

// --------------------------------------------------- replay suppression ----

TEST(ReplaySuppression, ReplayedJournalSuffixDoesNotDoubleCountActions) {
  Cluster& c = cluster();
  obs::ObsSession uninterrupted;
  runtime::JournalOptions jopt;
  jopt.snapshot_every = 5;
  runtime::Journal journal(jopt);
  (void)c.run(c.opt, &uninterrupted, &journal);
  const auto* ref = uninterrupted.metrics().find_counter("queue.jobs_started");
  ASSERT_NE(ref, nullptr);

  // Kill a few records past the last snapshot, so recovery replays a
  // suffix that contains launch records.
  runtime::Journal cut = journal;
  ASSERT_TRUE(cut.last_snapshot().has_value());
  cut.truncate(*cut.last_snapshot() + 3);

  std::uint64_t launches_already_counted = 0;
  for (const auto& rec : cut.records())
    if (rec.kind == "launch") ++launches_already_counted;

  obs::ObsSession recovery;
  (void)c.recover(c.opt, cut, &recovery);
  const auto* rec_started =
      recovery.metrics().find_counter("queue.jobs_started");

  // The dead coordinator counted one start per journaled launch; the
  // recovery session may only count starts it performed *live* — replayed
  // launches are suppressed. Together the two sessions account every
  // start exactly once.
  const std::uint64_t recovered =
      rec_started != nullptr ? rec_started->value() : 0;
  EXPECT_EQ(launches_already_counted + recovered, ref->value());
  // And the replay did happen (this kill point leaves a non-empty suffix).
  const auto* replayed = recovery.metrics().find_counter("journal.replayed");
  ASSERT_NE(replayed, nullptr);
  EXPECT_GT(replayed->value(), 0u);
}

// -------------------------------------------------------- alert engine ----

TEST(Alerts, DefaultCatalogIsValidAndCoversTheSlos) {
  const auto rules = obs::AlertEngine::default_rules();
  EXPECT_GE(rules.size(), 6u);
  std::set<std::string> names;
  for (const auto& r : rules) {
    r.validate();
    names.insert(r.name);
  }
  EXPECT_EQ(names.size(), rules.size());  // names are unique
  EXPECT_TRUE(names.count("budget-violation") != 0);
  EXPECT_TRUE(names.count("slow-decisions") != 0);
}

/// A synthetic flight record that trips every rule kind at a known instant.
void fill_noisy_timeline(obs::Timeline& tl) {
  tl.record("budget.violation_s", 10.0, 0.0);
  tl.record("budget.violation_s", 20.0, 2.5);  // violation appears at t=20
  tl.record("node0.power_w", 0.0, 100.0);
  tl.record("node0.power_w", 30.0, 130.0);  // above 120 from t=30
  tl.record("node0.power_w", 45.0, 100.0);  // ...until t=45
  tl.event("job", 5.0, "fail SP-MZ attempts=3");
  tl.event("mode", 12.0, "METER_BLACKOUT enter");
  tl.event("mode", 14.0, "NORMAL restore");
  tl.record("queue.wait", 1.0, 10.0);
  tl.record("queue.wait", 2.0, 900.0);
  tl.record("queue.wait", 50.0, 950.0);
}

TEST(Alerts, EveryRuleKindFiresDeterministicallyAtTheRightInstant) {
  obs::Timeline tl;
  fill_noisy_timeline(tl);
  std::vector<obs::AlertRule> rules = obs::AlertEngine::parse_rules(
      "violated   critical value(budget.violation_s) > 0\n"
      "hot-node   warning  time_above(node0.power_w, 120) > 5\n"
      "slow-waits warning  p50(queue.wait) > 100\n"
      "job-fail   critical events(job, fail ) > 0\n"
      "blackout   info     mode(METER_BLACKOUT) > 0\n",
      "test-rules");
  ASSERT_EQ(rules.size(), 5u);
  const obs::AlertEngine engine(std::move(rules));

  const auto outcomes = engine.evaluate(tl);
  ASSERT_EQ(outcomes.size(), 5u);
  for (const auto& o : outcomes) EXPECT_TRUE(o.fired) << o.rule.name;

  // Firing instants: the first moment each predicate became true.
  EXPECT_DOUBLE_EQ(outcomes[0].at_s, 20.0);  // first sample above 0
  EXPECT_DOUBLE_EQ(outcomes[0].observed, 2.5);
  EXPECT_DOUBLE_EQ(outcomes[1].at_s, 35.0);  // 5 s into the hot stretch
  EXPECT_DOUBLE_EQ(outcomes[1].observed, 15.0);
  EXPECT_DOUBLE_EQ(outcomes[2].observed, 900.0);  // nearest-rank p50
  EXPECT_DOUBLE_EQ(outcomes[3].at_s, 5.0);
  EXPECT_DOUBLE_EQ(outcomes[4].at_s, 12.0);

  // Determinism: same timeline, same outcomes, byte for byte.
  const auto again = engine.evaluate(tl);
  EXPECT_EQ(obs::AlertEngine::render_table(outcomes),
            obs::AlertEngine::render_table(again));
  EXPECT_EQ(obs::AlertEngine::render_json(outcomes),
            obs::AlertEngine::render_json(again));
  EXPECT_EQ(obs::AlertEngine::exit_code(outcomes), 1);
}

TEST(Alerts, QuietTimelineFiresNothing) {
  obs::Timeline tl;
  tl.record("budget.violation_s", 100.0, 0.0);
  tl.record("queue.depth", 100.0, 0.0);
  tl.event("job", 50.0, "finish SP-MZ");
  const obs::AlertEngine engine(obs::AlertEngine::default_rules());
  const auto outcomes = engine.evaluate(tl);
  for (const auto& o : outcomes) EXPECT_FALSE(o.fired) << o.rule.name;
  EXPECT_EQ(obs::AlertEngine::exit_code(outcomes), 0);
  // The table's only "FIRED" is the column header; every row reads "ok".
  const std::string table = obs::AlertEngine::render_table(outcomes);
  std::size_t fired_tokens = 0;
  for (std::size_t p = table.find("FIRED"); p != std::string::npos;
       p = table.find("FIRED", p + 1))
    ++fired_tokens;
  EXPECT_EQ(fired_tokens, 1u);
  EXPECT_NE(obs::AlertEngine::render_json(outcomes).find("\"fired\": 0"),
            std::string::npos);
}

TEST(Alerts, QuantileRuleFallsBackToAMetricsHistogram) {
  obs::Timeline tl;  // no such sample series on simulated time
  tl.record("queue.depth", 1.0, 0.0);
  obs::MetricsRegistry reg;
  auto& h = reg.histogram("queue.decision_latency_us",
                          obs::HistogramSpec{{100.0, 1000.0, 100000.0}});
  for (int i = 0; i < 5; ++i) h.record(50.0);
  for (int i = 0; i < 5; ++i) h.record(2e6);  // p99 lands in the overflow bucket

  obs::AlertRule rule;
  rule.name = "slow";
  rule.kind = obs::AlertKind::kQuantileAbove;
  rule.series = "queue.decision_latency_us";
  rule.level = 0.99;
  rule.threshold = 100000.0;
  obs::AlertEngine engine;
  engine.add_rule(rule);

  // Without metrics: no data, no fire.
  EXPECT_FALSE(engine.evaluate(tl)[0].fired);
  EXPECT_EQ(engine.evaluate(tl)[0].detail, "no samples");
  // With the registry attached the p99 resolves from the histogram.
  const auto out = engine.evaluate(tl, &reg);
  EXPECT_TRUE(out[0].fired);
  EXPECT_GT(out[0].observed, 100000.0);
}

TEST(Alerts, ParseRejectsMalformedRulesWithContext) {
  EXPECT_THROW(
      (void)obs::AlertEngine::parse_rules("bad", "f"), PreconditionError);
  EXPECT_THROW((void)obs::AlertEngine::parse_rules(
                   "r shouting value(x) > 1", "f"),
               PreconditionError);
  EXPECT_THROW((void)obs::AlertEngine::parse_rules(
                   "r critical frobnicate(x) > 1", "f"),
               PreconditionError);
  EXPECT_THROW((void)obs::AlertEngine::parse_rules(
                   "r critical value(x) 1", "f"),
               PreconditionError);
  EXPECT_THROW((void)obs::AlertEngine::parse_rules(
                   "r critical p0(x) > 1", "f"),
               PreconditionError);
  // Comments and blank lines are fine; expressions round-trip.
  const auto rules = obs::AlertEngine::parse_rules(
      "# catalog\n\nhot warning time_above(node0.power_w, 120) > 5\n", "f");
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].expression(),
            "time_above(node0.power_w, 1.2e+02) > 5");  // shortest-exact 120
}

TEST(Alerts, EvaluateAndRecordAppendsAlertsToTheFlightRecorder) {
  obs::Timeline tl;
  fill_noisy_timeline(tl);
  const obs::AlertEngine engine(obs::AlertEngine::parse_rules(
      "violated critical value(budget.violation_s) > 0\n"
      "job-fail critical events(job, fail ) > 0\n",
      "test-rules"));
  const auto outcomes = engine.evaluate_and_record(tl);
  ASSERT_EQ(outcomes.size(), 2u);

  // One alert event per fired rule, ordered by firing instant.
  const auto evs = tl.events("alert");
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_DOUBLE_EQ(evs[0].t_s, 5.0);
  EXPECT_NE(evs[0].label.find("critical job-fail"), std::string::npos);
  EXPECT_DOUBLE_EQ(evs[1].t_s, 20.0);
  EXPECT_NE(evs[1].label.find("critical violated"), std::string::npos);
  // Plus the firing-count sample at the end of the run.
  const auto firing = tl.samples("alert.firing");
  ASSERT_EQ(firing.size(), 1u);
  EXPECT_DOUBLE_EQ(firing[0].value, 2.0);
}

}  // namespace
}  // namespace clip
