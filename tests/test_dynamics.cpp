// Tests for the dynamic/operational layers: the time-stepped RAPL
// controller (cross-validated against the analytic solver), telemetry
// recording, and the host governor driving real kernels.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/host_governor.hpp"
#include "runtime/telemetry.hpp"
#include "sim/executor.hpp"
#include "sim/rapl.hpp"
#include "sim/rapl_controller.hpp"
#include "util/check.hpp"
#include "workloads/catalog.hpp"
#include "workloads/kernels.hpp"
#include "workloads/phases.hpp"

namespace clip {
namespace {

sim::MeterOptions no_noise() {
  sim::MeterOptions m;
  m.enabled = false;
  return m;
}

// ---------------------------------------------------------- RAPL controller ----

class RaplControllerTest : public ::testing::Test {
 protected:
  sim::MachineSpec spec_;
  sim::RaplControllerSim controller_{spec_};
};

TEST_F(RaplControllerTest, SteadyStatePowerRespectsCap) {
  const auto w = *workloads::find_benchmark("CoMD");
  for (double cap : {45.0, 70.0, 95.0, 120.0}) {
    const sim::RaplTrace trace = controller_.simulate(
        w, 24, parallel::AffinityPolicy::kScatter, 68.0, Watts(cap));
    // Window-average enforcement: the steady-state mean sits at/below the
    // cap (individual instants may poke above while the window absorbs it).
    EXPECT_LE(trace.avg_power_w, cap * 1.02) << cap;
  }
}

TEST_F(RaplControllerTest, ConvergesToAnalyticSolverThroughput) {
  // The dynamic controller and the closed-form solver are two views of the
  // same contract: their steady-state throughput must agree.
  const sim::RaplSolver solver(spec_);
  for (const char* name : {"CoMD", "BT-MZ", "TeaLeaf"}) {
    const auto w = *workloads::find_benchmark(name);
    for (double cap : {50.0, 80.0, 110.0}) {
      sim::NodeConfig cfg;
      cfg.threads = 24;
      cfg.affinity = parallel::AffinityPolicy::kScatter;
      cfg.cpu_cap = Watts(cap);
      cfg.mem_cap = Watts(1e9);
      const sim::OperatingPoint op = solver.solve(w, 1.0, cfg);
      const double analytic_throughput =
          1.0 / op.perf.time.value();  // work per second at the solved point

      const sim::RaplTrace trace = controller_.simulate(
          w, 24, parallel::AffinityPolicy::kScatter, 68.0, Watts(cap));
      // Normalize the analytic throughput the same way (vs top state).
      sim::NodeConfig top = cfg;
      top.cpu_cap = Watts(1e9);
      const double top_throughput =
          1.0 / solver.solve(w, 1.0, top).perf.time.value();
      EXPECT_NEAR(trace.throughput,
                  analytic_throughput / top_throughput, 0.08)
          << name << " cap=" << cap;
    }
  }
}

TEST_F(RaplControllerTest, GenerousCapSitsAtTopState) {
  const auto w = *workloads::find_benchmark("EP");
  const sim::RaplTrace trace = controller_.simulate(
      w, 24, parallel::AffinityPolicy::kScatter, 68.0, Watts(500.0));
  EXPECT_NEAR(trace.avg_freq_ghz, 2.3, 1e-9);
  EXPECT_DOUBLE_EQ(trace.duty_low_fraction(), 0.0);
  EXPECT_NEAR(trace.throughput, 1.0, 1e-9);
}

TEST_F(RaplControllerTest, IntermediateCapOscillatesBetweenNearbyStates) {
  const auto w = *workloads::find_benchmark("CoMD");
  // Pick a cap strictly between two state powers: the controller should
  // duty-cycle between the states bracketing it.
  const sim::RaplTrace trace = controller_.simulate(
      w, 24, parallel::AffinityPolicy::kScatter, 68.0, Watts(100.0));
  double lo = 1e9, hi = 0.0;
  for (std::size_t i = trace.freq_ghz.size() / 2;
       i < trace.freq_ghz.size(); ++i) {
    lo = std::min(lo, trace.freq_ghz[i]);
    hi = std::max(hi, trace.freq_ghz[i]);
  }
  EXPECT_GT(hi, lo);            // it does oscillate
  EXPECT_LE(hi - lo, 0.2 + 1e-9);  // within the bracketing states
  EXPECT_GT(trace.duty_low_fraction(), 0.0);
  EXPECT_LT(trace.duty_low_fraction(), 1.0);
}

TEST_F(RaplControllerTest, ConvergesFromAnyInitialState) {
  const auto w = *workloads::find_benchmark("CoMD");
  sim::RaplControllerOptions from_bottom;
  from_bottom.initial_state = 0;
  sim::RaplControllerOptions from_top;
  from_top.initial_state = spec_.ladder.state_count() - 1;
  const auto a = controller_.simulate(
      w, 24, parallel::AffinityPolicy::kScatter, 68.0, Watts(90.0),
      from_bottom);
  const auto b = controller_.simulate(
      w, 24, parallel::AffinityPolicy::kScatter, 68.0, Watts(90.0),
      from_top);
  EXPECT_NEAR(a.avg_power_w, b.avg_power_w, 1.5);
  EXPECT_NEAR(a.throughput, b.throughput, 0.02);
}

TEST_F(RaplControllerTest, TraceShapesConsistent) {
  const auto w = *workloads::find_benchmark("BT-MZ");
  sim::RaplControllerOptions opt;
  opt.steps = 500;
  const auto trace = controller_.simulate(
      w, 16, parallel::AffinityPolicy::kScatter, 68.0, Watts(80.0), opt);
  EXPECT_EQ(trace.time_s.size(), 500u);
  EXPECT_EQ(trace.power_w.size(), 500u);
  EXPECT_EQ(trace.freq_ghz.size(), 500u);
}

TEST_F(RaplControllerTest, InvalidOptionsRejected) {
  const auto w = *workloads::find_benchmark("CoMD");
  sim::RaplControllerOptions opt;
  opt.steps = 5;
  EXPECT_THROW((void)controller_.simulate(
                   w, 24, parallel::AffinityPolicy::kScatter, 68.0,
                   Watts(90.0), opt),
               PreconditionError);
}

// ----------------------------------------------------------------- telemetry ----

class TelemetryTest : public ::testing::Test {
 protected:
  sim::SimExecutor ex_{sim::MachineSpec{}, no_noise()};
  std::filesystem::path path_ =
      std::filesystem::temp_directory_path() / "clip_telemetry.csv";
  void TearDown() override { std::filesystem::remove(path_); }
};

TEST_F(TelemetryTest, FlatSeriesCoversRunAndAllNodes) {
  const auto w = *workloads::find_benchmark("BT-MZ");
  sim::ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.node.threads = 16;
  const auto m = ex_.run_exact(w, cfg);
  runtime::Telemetry telemetry;
  const auto series = telemetry.record(m, 16);
  ASSERT_FALSE(series.empty());
  EXPECT_EQ(series.size() % 4, 0u);  // all nodes sampled each tick
  EXPECT_NEAR(series.back().time_s, m.time.value(), 0.2);
}

TEST_F(TelemetryTest, EnergyIntegralMatchesMeasurement) {
  const auto w = *workloads::find_benchmark("CoMD");
  sim::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.node.threads = 24;
  const auto m = ex_.run_exact(w, cfg);
  runtime::TelemetryOptions opt;
  opt.sample_period_s = 0.01;
  opt.noise_sigma = 0.0;
  runtime::Telemetry telemetry(opt);
  const auto series = telemetry.record(m, 24);
  const double integral =
      runtime::Telemetry::energy_j(series, opt.sample_period_s);
  EXPECT_NEAR(integral, m.energy.value(), m.energy.value() * 0.02);
}

TEST_F(TelemetryTest, PhasedSeriesStepsAtBoundaries) {
  const auto p = *workloads::find_phased("BT-MZ-phased");
  sim::PhasedClusterConfig cfg;
  cfg.nodes = 4;
  cfg.phase_nodes = {sim::NodeConfig{.threads = 24},
                     sim::NodeConfig{.threads = 8}};
  const auto m = ex_.run_phased_exact(p, cfg);
  runtime::Telemetry telemetry;
  const auto series = telemetry.record_phased(m, 4);
  // Both phase labels appear, in order, and the thread column steps.
  bool saw_solve = false, saw_exchange = false;
  for (const auto& s : series) {
    if (s.phase == "solve") {
      saw_solve = true;
      EXPECT_EQ(s.threads, 24);
      EXPECT_FALSE(saw_exchange) << "phases out of order";
    }
    if (s.phase == "exch_qbc") {
      saw_exchange = true;
      EXPECT_EQ(s.threads, 8);
    }
  }
  EXPECT_TRUE(saw_solve);
  EXPECT_TRUE(saw_exchange);
}

TEST_F(TelemetryTest, CsvExportRoundTrips) {
  const auto w = *workloads::find_benchmark("EP");
  sim::ClusterConfig cfg;
  cfg.nodes = 1;
  cfg.node.threads = 24;
  const auto m = ex_.run_exact(w, cfg);
  runtime::Telemetry telemetry;
  const auto series = telemetry.record(m, 24);
  runtime::Telemetry::write(path_, series);
  const CsvDocument doc = read_csv(path_);
  EXPECT_EQ(doc.rows.size(), series.size());
  EXPECT_EQ(doc.column_index("cpu_w"), 3);
}

TEST(TelemetryOptionsTest, Validation) {
  runtime::TelemetryOptions opt;
  opt.sample_period_s = 0.0;
  EXPECT_THROW(runtime::Telemetry t(opt), PreconditionError);
}

// ------------------------------------------------------------- host governor ----

sim::MachineSpec small_host_model() {
  sim::MachineSpec model;
  model.nodes = 1;
  model.shape = {.sockets = 2, .cores_per_socket = 2};
  return model;
}

TEST(HostGovernor, DecisionIsAppliedToThePool) {
  parallel::ThreadPool pool(4);
  core::HostGovernor governor(small_host_model());
  const auto decision = governor.govern(
      pool,
      [](parallel::ThreadPool& p) {
        return workloads::jacobi_stencil(p, 96, 10);
      },
      Watts(40.0));
  EXPECT_EQ(pool.concurrency(), decision.node.config.threads);
  EXPECT_GE(decision.node.config.threads, 1);
  EXPECT_LE(decision.node.config.threads, 4);
  EXPECT_GT(decision.full_time_s, 0.0);
  EXPECT_GT(decision.half_time_s, 0.0);
}

TEST(HostGovernor, BudgetSplitsAreConsistent) {
  parallel::ThreadPool pool(4);
  core::HostGovernor governor(small_host_model());
  const Watts budget(36.0);
  const auto decision = governor.govern(
      pool,
      [](parallel::ThreadPool& p) {
        return workloads::stream_triad(p, 1 << 15, 10);
      },
      budget);
  EXPECT_LE(decision.node.config.cpu_cap.value() +
                decision.node.config.mem_cap.value(),
            budget.value() + 0.6);
}

TEST(HostGovernor, ProfileCarriesRealMeasurements) {
  parallel::ThreadPool pool(2);
  core::HostGovernor governor(small_host_model());
  const auto decision = governor.govern(
      pool,
      [](parallel::ThreadPool& p) {
        return workloads::spmv(p, 1 << 14, 10);
      },
      Watts(40.0));
  EXPECT_GT(decision.profile.per_core_bw_gbps, 0.0);
  EXPECT_GT(decision.profile.node_bw_gbps, 0.0);
  EXPECT_NEAR(decision.profile.perf_ratio_half_over_all,
              decision.full_time_s / decision.half_time_s, 1e-12);
}

TEST(HostGovernor, RejectsNonPositiveBudget) {
  parallel::ThreadPool pool(2);
  core::HostGovernor governor(small_host_model());
  EXPECT_THROW(
      (void)governor.govern(
          pool,
          [](parallel::ThreadPool& p) {
            return workloads::monte_carlo_pi(p, 10000);
          },
          Watts(0.0)),
      PreconditionError);
}

}  // namespace
}  // namespace clip
