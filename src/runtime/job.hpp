// Job abstractions for the application execution module (paper §IV-B3).
#pragma once

#include <string>

#include "sim/config.hpp"
#include "util/units.hpp"
#include "workloads/signature.hpp"

namespace clip::runtime {

/// A job submission: what the user hands the framework.
struct JobSpec {
  workloads::WorkloadSignature app;
  Watts cluster_budget{0.0};
  std::string tag;  ///< free-form label for reports
};

/// The outcome of a scheduled-and-executed job.
struct JobResult {
  JobSpec spec;
  std::string method;          ///< scheduler that produced the plan
  sim::ClusterConfig plan;
  sim::Measurement measurement;
  Seconds scheduling_overhead{0.0};  ///< profiling cost charged to this job

  [[nodiscard]] double performance() const {
    return measurement.performance();
  }
};

/// Render the launch script the execution module would hand to the cluster
/// job scheduler (the paper's module "creates a script to launch the job
/// with the execution configuration").
[[nodiscard]] std::string render_launch_script(const JobSpec& spec,
                                               const sim::ClusterConfig& plan);

}  // namespace clip::runtime
