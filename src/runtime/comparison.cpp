#include "runtime/comparison.hpp"

#include <algorithm>
#include <cmath>

#include "baselines/all_in.hpp"
#include "util/check.hpp"

namespace clip::runtime {

double ComparisonResult::mean_relative(const std::string& method,
                                       double budget_w) const {
  double acc = 0.0;
  int count = 0;
  for (const auto& c : cells) {
    if (c.method != method || c.budget_w != budget_w) continue;
    acc += c.relative_performance;
    ++count;
  }
  CLIP_REQUIRE(count > 0, "no cells for method " + method);
  return acc / count;
}

double ComparisonResult::mean_improvement(
    const std::string& method, const std::string& reference,
    const std::vector<double>& budgets) const {
  double acc = 0.0;
  int count = 0;
  for (const auto& c : cells) {
    if (c.method != method) continue;
    if (!budgets.empty() &&
        std::find(budgets.begin(), budgets.end(), c.budget_w) ==
            budgets.end())
      continue;
    const ComparisonCell* ref =
        find(c.app, c.parameters, c.budget_w, reference);
    if (ref == nullptr || ref->relative_performance <= 0.0) continue;
    acc += c.relative_performance / ref->relative_performance - 1.0;
    ++count;
  }
  CLIP_REQUIRE(count > 0, "no comparable cells");
  return acc / count;
}

const ComparisonCell* ComparisonResult::find(const std::string& app,
                                             const std::string& parameters,
                                             double budget_w,
                                             const std::string& method) const {
  for (const auto& c : cells) {
    if (c.app == app && c.parameters == parameters &&
        c.budget_w == budget_w && c.method == method)
      return &c;
  }
  return nullptr;
}

void ComparisonHarness::add_method(
    std::shared_ptr<baselines::PowerScheduler> method) {
  CLIP_REQUIRE(method != nullptr, "null method");
  methods_.push_back(std::move(method));
}

double ComparisonHarness::unbounded_reference_time(
    const workloads::WorkloadSignature& app) {
  baselines::AllInScheduler all_in(executor_->spec());
  const Watts unlimited(1e6);
  const sim::ClusterConfig cfg = all_in.plan(app, unlimited);
  return executor_->run_exact(app, cfg).time.value();
}

ComparisonResult ComparisonHarness::run(
    const std::vector<workloads::WorkloadSignature>& apps,
    const std::vector<double>& budgets_w) {
  CLIP_REQUIRE(!methods_.empty(), "register at least one method");
  ComparisonResult result;
  for (const auto& app : apps) {
    const double reference_time = unbounded_reference_time(app);
    for (double budget : budgets_w) {
      for (const auto& method : methods_) {
        ComparisonCell cell;
        cell.app = app.name;
        cell.parameters = app.parameters;
        cell.budget_w = budget;
        cell.method = method->name();
        cell.plan = method->plan(app, Watts(budget));
        const sim::Measurement m = executor_->run_exact(app, cell.plan);
        cell.time_s = m.time.value();
        cell.relative_performance = reference_time / cell.time_s;
        result.cells.push_back(std::move(cell));
      }
    }
  }
  return result;
}

}  // namespace clip::runtime
