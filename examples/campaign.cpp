// Campaign — run the whole Table II evaluation suite through the
// application execution module (launcher + persistent knowledge database)
// under several budgets, printing per-job results and the generated launch
// script for one job. A miniature of operating a power-bounded cluster with
// CLIP as its scheduler.
#include <filesystem>
#include <iostream>

#include "runtime/launcher.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workloads/catalog.hpp"

using namespace clip;

int main() {
  const std::filesystem::path db_path = "clip_knowledge.csv";
  sim::SimExecutor cluster{sim::MachineSpec{}};
  runtime::Launcher launcher(cluster, workloads::training_benchmarks(),
                             db_path);

  Table t({"job", "budget (W)", "nodes", "threads", "time (s)",
           "power (W)", "profiling cost (s)"});
  t.set_title("Campaign — Table II suite under shrinking budgets");

  double total_time = 0.0, total_energy = 0.0;
  for (double budget : {1200.0, 800.0, 600.0}) {
    for (const auto& app : workloads::paper_benchmarks()) {
      runtime::JobSpec spec;
      spec.app = app;
      spec.cluster_budget = Watts(budget);
      const runtime::JobResult r = launcher.run(spec);
      total_time += r.measurement.time.value();
      total_energy += r.measurement.energy.value();
      t.add_row({app.name + " (" + app.parameters + ")",
                 format_double(budget, 0), std::to_string(r.plan.nodes),
                 std::to_string(r.plan.node.threads),
                 format_double(r.measurement.time.value(), 2),
                 format_double(r.measurement.avg_power.value(), 1),
                 format_double(r.scheduling_overhead.value(), 2)});
    }
  }
  t.print(std::cout);
  std::cout << "\nCampaign makespan " << format_double(total_time, 1)
            << " s, energy " << format_double(total_energy / 1e6, 2)
            << " MJ. Note profiling cost is paid once per application — "
               "every later budget reuses the knowledge DB ("
            << db_path << ").\n\n";

  // Show the script the execution module hands to the cluster scheduler.
  runtime::JobSpec spec;
  spec.app = *workloads::find_benchmark("TeaLeaf");
  spec.cluster_budget = Watts(800.0);
  std::cout << "Launch script for TeaLeaf @800 W:\n"
            << launcher.plan_script(spec);

  std::filesystem::remove(db_path);
  return 0;
}
