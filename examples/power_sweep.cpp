// Power sweep — how CLIP's decisions evolve with the cluster budget for one
// application of each scalability class. Shows the four coordinated
// dimensions (node count, concurrency, memory level, CPU/DRAM split) and the
// achieved performance at every budget.
#include <iostream>

#include "core/scheduler.hpp"
#include "sim/executor.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workloads/catalog.hpp"

using namespace clip;

int main() {
  sim::SimExecutor cluster{sim::MachineSpec{}};
  core::ClipScheduler clip(cluster, workloads::training_benchmarks());

  const char* apps[] = {"CoMD", "BT-MZ", "TeaLeaf"};
  for (const char* name : apps) {
    const auto app = *workloads::find_benchmark(name);
    Table t({"budget (W)", "nodes", "threads/node", "affinity",
             "mem level", "CPU cap (W)", "DRAM cap (W)", "time (s)",
             "avg power (W)"});
    t.set_title(std::string(name) + " (" +
                workloads::to_string(app.expected_class) +
                ") — CLIP decisions across the budget range");
    for (double budget = 400.0; budget <= 1600.0 + 1e-9; budget += 200.0) {
      const auto d = clip.schedule(app, Watts(budget));
      const auto m = cluster.run(app, d.cluster);
      t.add_row({format_double(budget, 0), std::to_string(d.cluster.nodes),
                 std::to_string(d.cluster.node.threads),
                 parallel::to_string(d.cluster.node.affinity),
                 sim::to_string(d.cluster.node.mem_level),
                 format_double(d.cluster.node.cpu_cap.value(), 1),
                 format_double(d.cluster.node.mem_cap.value(), 1),
                 format_double(m.time.value(), 2),
                 format_double(m.avg_power.value(), 1)});
    }
    t.print(std::cout);
    std::cout << '\n';
  }
  std::cout
      << "Note how the linear app always keeps 24 threads (frequency "
         "absorbs the budget), the logarithmic app sheds threads only "
         "when watts get scarce, and the parabolic app never exceeds its "
         "inflection point.\n";
  return 0;
}
