// Deterministic random number generation.
//
// Every stochastic element of the simulator (measurement noise, manufacturing
// variability, workload jitter) draws from an explicitly seeded generator so
// experiments, tests and benchmark tables are bit-reproducible. We implement
// xoshiro256** (Blackman & Vigna) seeded via splitmix64 rather than relying
// on std::mt19937's larger state and unspecified-across-platforms helpers
// like std::normal_distribution (whose output differs between libstdc++ and
// libc++); all distributions here are hand-rolled and portable.
#pragma once

#include <array>
#include <cstdint>

namespace clip {

/// splitmix64: used to expand a single 64-bit seed into generator state.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** PRNG with portable, hand-rolled distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit integer.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (deterministic, platform-independent).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Log-normal: exp(N(mu, sigma)). Used for manufacturing variability.
  double lognormal(double mu, double sigma);

  /// Split off an independent stream (for per-node / per-workload noise).
  [[nodiscard]] Rng split();

 private:
  std::array<std::uint64_t, 4> s_{};
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace clip
