// Time-stepped RAPL controller simulation.
//
// The analytic RaplSolver answers "which DVFS state fits under the cap" in
// closed form. Real RAPL is a *feedback controller*: it tracks a running
// average of the energy counter over a time window and steps the P-state up
// or down to keep that average at the limit — which is where the
// duty-cycling behaviour (oscillating between adjacent states) physically
// comes from. This module simulates that control loop at millisecond
// resolution, producing power/frequency traces and long-run averages that
// must agree with the analytic solver (an invariant the test suite checks:
// the steady-state throughput of the controller equals the solver's
// operating point within a small tolerance).
#pragma once

#include <vector>

#include "obs/session.hpp"
#include "sim/machine.hpp"
#include "sim/perf_model.hpp"
#include "sim/power_model.hpp"
#include "workloads/signature.hpp"

namespace clip::obs {
class Timeline;
}

namespace clip::sim {

struct RaplControllerOptions {
  double step_s = 1e-3;     ///< control-loop period
  double window_s = 10e-3;  ///< running-average window
  int steps = 4000;         ///< simulated steps
  std::size_t initial_state = 0;  ///< ladder index at t=0 (0 = lowest)
};

struct RaplTrace {
  std::vector<double> time_s;
  std::vector<double> power_w;      ///< instantaneous PKG power
  std::vector<double> freq_ghz;     ///< selected P-state
  double avg_power_w = 0.0;         ///< steady-state window (2nd half) mean
  double avg_freq_ghz = 0.0;
  double throughput = 0.0;  ///< mean work rate, normalized so that the
                            ///< nominal-frequency unsaturated rate is 1

  /// Fraction of steady-state steps spent at the lower of the two states
  /// the controller oscillates between (0 when it sits on one state).
  [[nodiscard]] double duty_low_fraction() const;
};

class RaplControllerSim {
 public:
  explicit RaplControllerSim(const MachineSpec& spec)
      : spec_(&spec), power_(spec), perf_(spec) {}

  /// Run the control loop for a workload at fixed (threads, affinity,
  /// bandwidth ceiling) under a PKG cap.
  [[nodiscard]] RaplTrace simulate(
      const workloads::WorkloadSignature& w, int threads,
      parallel::AffinityPolicy affinity, double bw_cap_gbps, Watts cpu_cap,
      RaplControllerOptions options = RaplControllerOptions{}) const;

  /// Attach an observability session (nullptr detaches): each simulate()
  /// bumps `sim.rapl_controller.runs` and feeds the step/transition
  /// histograms (see docs/observability.md).
  void set_observer(obs::ObsSession* obs) { obs_ = obs; }

  /// Attach a flight recorder (nullptr detaches): each simulate() appends
  /// the cap (`rapl.cap_w`, once at the run start), the per-step package
  /// power (`rapl.power_w`) and the selected frequency (`rapl.freq_ghz`,
  /// plus `rapl.freq_rel` relative to the top P-state). Successive runs
  /// continue on the same time axis (each starts where the previous ended),
  /// keeping the series monotone. Detached cost is one branch per step.
  void set_timeline(obs::Timeline* timeline) { timeline_ = timeline; }

 private:
  const MachineSpec* spec_;
  PowerModel power_;
  PerfModel perf_;
  obs::ObsSession* obs_ = nullptr;
  obs::Timeline* timeline_ = nullptr;
  mutable double timeline_t0_s_ = 0.0;  ///< time axis across simulate() calls
};

}  // namespace clip::sim
