// Metrics registry: counters, gauges, fixed-bucket histograms.
//
// Recording is lock-free (plain atomics) so instrumented hot paths — the
// simulator executes tens of thousands of runs inside one oracle search —
// never serialize on a registry mutex; the mutex guards only metric
// *creation* and snapshot reads. Histograms use fixed buckets chosen at
// registration (linear or exponential edges), which keeps `record()` O(log
// buckets) with no allocation and makes quantile queries (p50/p90/p99 via
// in-bucket linear interpolation) cheap and deterministic for a fixed input
// sequence. Values carry whatever unit the call site chose; the convention
// table lives in docs/observability.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/table.hpp"

namespace clip::obs {

/// Monotone event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    n_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return n_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> n_{0};
};

/// Last-write-wins instantaneous value (queue depth, free watts, ...).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Bucket layout for a histogram: ascending finite upper bounds; everything
/// above the last bound lands in an implicit overflow bucket.
struct HistogramSpec {
  std::vector<double> bounds;

  /// `buckets` equal-width buckets covering [lo, hi].
  [[nodiscard]] static HistogramSpec linear(double lo, double hi,
                                            int buckets);
  /// Bounds lo, lo*factor, lo*factor^2, ... (`buckets` of them).
  [[nodiscard]] static HistogramSpec exponential(double lo, double factor,
                                                 int buckets);

  void validate() const;
};

/// Fixed-bucket histogram with lock-free recording.
class Histogram {
 public:
  explicit Histogram(HistogramSpec spec);

  void record(double v);

  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;  ///< 0 when empty
  [[nodiscard]] double max() const;  ///< 0 when empty

  /// Quantile estimate for q in [0,1]: locate the bucket holding the q-th
  /// observation and interpolate linearly inside it, clamped to the observed
  /// [min, max]. Returns 0 when empty.
  [[nodiscard]] double quantile(double q) const;

  /// Snapshot of the per-bucket counts: spec().bounds.size() + 1 entries,
  /// the last being the overflow bucket (values above the top bound).
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;

  [[nodiscard]] const HistogramSpec& spec() const { return spec_; }

 private:
  HistogramSpec spec_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  ///< bounds + overflow
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Name -> metric. Creation is get-or-create (the first call wins; for a
/// histogram the first caller's spec sticks). References stay valid for the
/// registry's lifetime.
class MetricsRegistry {
 public:
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     const HistogramSpec& spec);

  /// Lookup without creation (tests, report writers).
  [[nodiscard]] const Counter* find_counter(std::string_view name) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name) const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const;

  /// Every metric as one row: name | kind | count | value/mean | p50 | p99.
  /// Rows are sorted by name (std::map), so output is deterministic.
  [[nodiscard]] Table summary_table() const;

  /// Prometheus text exposition format (one `# TYPE` line per metric;
  /// histograms as cumulative `_bucket{le="..."}` series plus `_sum` /
  /// `_count`). Metric names are sanitized to [a-zA-Z0-9_:], rows sorted by
  /// name, doubles printed shortest-exact — deterministic for a fixed
  /// registry state. Implemented in prometheus.cpp.
  [[nodiscard]] std::string render_prometheus() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace clip::obs
