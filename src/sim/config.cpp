#include "sim/config.hpp"

#include <sstream>

namespace clip::sim {

std::string NodeConfig::describe() const {
  std::ostringstream os;
  os << threads << " threads/" << parallel::to_string(affinity) << ", mem "
     << to_string(mem_level) << ", caps cpu=" << cpu_cap.value()
     << "W mem=" << mem_cap.value() << "W";
  return os.str();
}

std::string ClusterConfig::describe() const {
  std::ostringstream os;
  os << nodes << " node(s) x [" << node.describe() << "]";
  if (!cpu_cap_overrides.empty()) os << " + per-node cap overrides";
  return os.str();
}

}  // namespace clip::sim
