#include "sim/power_meter.hpp"

#include <algorithm>

#include "obs/timeline.hpp"

namespace clip::sim {

double corrupt_reading(const MeterFaultState& fault, double truth_w) {
  switch (fault.kind) {
    case MeterFaultState::Kind::kNone:
      return truth_w;
    case MeterFaultState::Kind::kStuckAt:
      return fault.value;
    case MeterFaultState::Kind::kDropout:
      return 0.0;
    case MeterFaultState::Kind::kSpike:
      return truth_w * fault.value;
  }
  return truth_w;
}

double PowerMeter::jitter(double sigma) {
  if (!options_.enabled || sigma <= 0.0) return 1.0;
  // Clamp to ±4 sigma so a single unlucky draw cannot flip a decision in a
  // way no real meter would.
  const double draw = std::clamp(rng_.normal(0.0, sigma), -4.0 * sigma,
                                 4.0 * sigma);
  return 1.0 + draw;
}

Watts PowerMeter::read_power(Watts truth) {
  return Watts(corrupt_reading(
      fault_, truth.value() * jitter(options_.power_noise_sigma)));
}

Seconds PowerMeter::read_time(Seconds truth) {
  return Seconds(truth.value() * jitter(options_.time_noise_sigma));
}

void PowerMeter::observe(Measurement& m) {
  if (options_.enabled) {
    m.time = read_time(m.time);
    for (auto& node : m.nodes) {
      node.time = read_time(node.time);
      node.cpu_power = read_power(node.cpu_power);
      node.mem_power = read_power(node.mem_power);
    }
    // Derived quantities stay consistent with the noisy reads.
    double watts = 0.0;
    for (const auto& node : m.nodes)
      watts += node.cpu_power.value() + node.mem_power.value();
    m.avg_power = Watts(watts);
    m.energy = m.avg_power * m.time;
  }
  if (timeline_ != nullptr)
    timeline_->record("meter.power_w", sample_time_s_, m.avg_power.value());
}

}  // namespace clip::sim
