// Tests for the extension features: phased workloads and phase-aware
// scheduling (§V-B1), the constrained runtime (§VII future work), and the
// power-aware job queue.
#include <gtest/gtest.h>

#include "core/scheduler.hpp"
#include "runtime/queue.hpp"
#include "sim/executor.hpp"
#include "util/check.hpp"
#include "workloads/catalog.hpp"
#include "workloads/phases.hpp"

namespace clip {
namespace {

sim::MeterOptions no_noise() {
  sim::MeterOptions m;
  m.enabled = false;
  return m;
}

class ExtensionTest : public ::testing::Test {
 protected:
  sim::SimExecutor ex_{sim::MachineSpec{}, no_noise()};
  core::ClipScheduler sched_{ex_, workloads::training_benchmarks()};
};

// --------------------------------------------------------- phased workloads ----

TEST(PhasedWorkload, CatalogEntriesValidate) {
  EXPECT_GE(workloads::phased_benchmarks().size(), 4u);
  for (const auto& p : workloads::phased_benchmarks())
    EXPECT_NO_THROW(p.validate());
}

TEST(PhasedWorkload, WeightsMustSumToOne) {
  workloads::PhasedWorkload p = workloads::phased_benchmarks().front();
  p.phases[0].weight += 0.1;
  EXPECT_THROW(p.validate(), PreconditionError);
}

TEST(PhasedWorkload, NeedsAtLeastTwoPhases) {
  workloads::PhasedWorkload p = workloads::phased_benchmarks().front();
  p.phases.resize(1);
  p.phases[0].weight = 1.0;
  EXPECT_THROW(p.validate(), PreconditionError);
}

TEST(PhasedWorkload, BlendAveragesByWeight) {
  const auto p = *workloads::find_phased("BT-MZ-phased");
  const auto blend = p.blended();
  double expected_m = 0.0;
  for (const auto& phase : p.phases)
    expected_m += phase.weight * phase.signature.memory_boundedness;
  EXPECT_NEAR(blend.memory_boundedness, expected_m, 1e-12);
  EXPECT_DOUBLE_EQ(blend.node_base_time_s, p.node_base_time_s);
  EXPECT_EQ(blend.name, "BT-MZ-phased");
}

TEST(PhasedWorkload, PhaseSignatureScalesWork) {
  const auto p = *workloads::find_phased("SP-MZ-phased");
  double total = 0.0;
  for (std::size_t i = 0; i < p.phases.size(); ++i)
    total += p.phase_signature(i).node_base_time_s;
  EXPECT_NEAR(total, p.node_base_time_s, 1e-9);
  EXPECT_THROW((void)p.phase_signature(99), PreconditionError);
}

TEST(PhasedWorkload, FindByName) {
  EXPECT_TRUE(workloads::find_phased("TeaLeaf-phased").has_value());
  EXPECT_FALSE(workloads::find_phased("nope").has_value());
}

// ---------------------------------------------------------- phased execution ----

TEST_F(ExtensionTest, PhasedRunSumsPhaseTimes) {
  const auto p = *workloads::find_phased("BT-MZ-phased");
  sim::PhasedClusterConfig cfg;
  cfg.nodes = 4;
  cfg.phase_nodes.assign(p.phases.size(), sim::NodeConfig{.threads = 16});
  const auto m = ex_.run_phased_exact(p, cfg);
  ASSERT_EQ(m.phases.size(), p.phases.size());
  double sum = 0.0, energy = 0.0;
  for (const auto& pm : m.phases) {
    sum += pm.time.value();
    energy += pm.energy.value();
  }
  EXPECT_NEAR(m.time.value(), sum, 1e-9);
  EXPECT_NEAR(m.energy.value(), energy, 1e-6);
  EXPECT_NEAR(m.avg_power.value(), energy / sum, 1e-9);
}

TEST_F(ExtensionTest, PhasedRunRequiresConfigPerPhase) {
  const auto p = *workloads::find_phased("BT-MZ-phased");
  sim::PhasedClusterConfig cfg;
  cfg.nodes = 4;
  cfg.phase_nodes.assign(1, sim::NodeConfig{});
  EXPECT_THROW((void)ex_.run_phased_exact(p, cfg), PreconditionError);
}

TEST_F(ExtensionTest, PhasedRunAppliesPerPhaseConfigs) {
  const auto p = *workloads::find_phased("BT-MZ-phased");
  sim::PhasedClusterConfig cfg;
  cfg.nodes = 4;
  sim::NodeConfig solve{.threads = 24};
  sim::NodeConfig exchange{.threads = 8};
  cfg.phase_nodes = {solve, exchange};
  const auto m = ex_.run_phased_exact(p, cfg);
  EXPECT_EQ(m.phases[0].threads, 24);
  EXPECT_EQ(m.phases[1].threads, 8);
}

// ----------------------------------------------------- phase-aware scheduling ----

TEST_F(ExtensionTest, PhaseAwareBeatsFlatOnEveryPhasedBenchmark) {
  for (const auto& p : workloads::phased_benchmarks()) {
    for (double budget : {600.0, 1000.0}) {
      const auto flat = sched_.schedule(p.blended(), Watts(budget));
      sim::PhasedClusterConfig flat_cfg;
      flat_cfg.nodes = flat.cluster.nodes;
      flat_cfg.phase_nodes.assign(p.phases.size(), flat.cluster.node);
      const auto flat_m = ex_.run_phased_exact(p, flat_cfg);

      const auto phased = sched_.schedule_phased(p, Watts(budget));
      const auto phased_m = ex_.run_phased_exact(p, phased.cluster);
      EXPECT_LT(phased_m.time.value(), flat_m.time.value() * 1.001)
          << p.name << " @" << budget;
    }
  }
}

TEST_F(ExtensionTest, PhaseAwareThrottlesTheExchangePhase) {
  const auto p = *workloads::find_phased("BT-MZ-phased");
  const auto d = sched_.schedule_phased(p, Watts(1000.0));
  ASSERT_EQ(d.cluster.phase_nodes.size(), 2u);
  // Solver scales; exchange saturates early and is contended.
  EXPECT_GT(d.cluster.phase_nodes[0].threads,
            d.cluster.phase_nodes[1].threads);
}

TEST_F(ExtensionTest, PhaseAwareRespectsBudget) {
  for (const auto& p : workloads::phased_benchmarks()) {
    const double budget = 800.0;
    const auto d = sched_.schedule_phased(p, Watts(budget));
    const auto m = ex_.run_phased_exact(p, d.cluster);
    for (const auto& pm : m.phases)
      EXPECT_LE(pm.avg_power.value(), budget * 1.01)
          << p.name << " phase " << pm.phase;
  }
}

TEST_F(ExtensionTest, PhaseClassesReported) {
  const auto p = *workloads::find_phased("SP-MZ-phased");
  const auto d = sched_.schedule_phased(p, Watts(1000.0));
  EXPECT_EQ(d.phase_classes.size(), p.phases.size());
  EXPECT_EQ(d.phase_inflections.size(), p.phases.size());
}

// --------------------------------------------------------- constrained mode ----

TEST_F(ExtensionTest, ConstrainedHonorsFixedNodes) {
  const auto w = *workloads::find_benchmark("CoMD");
  for (int nodes : {1, 3, 5, 8}) {
    const auto d = sched_.schedule_constrained(w, Watts(900.0), nodes);
    EXPECT_EQ(d.cluster.nodes, nodes);
  }
}

TEST_F(ExtensionTest, ConstrainedHonorsFixedThreads) {
  const auto w = *workloads::find_benchmark("BT-MZ");
  const auto d = sched_.schedule_constrained(w, Watts(900.0), 4, 16);
  EXPECT_EQ(d.cluster.nodes, 4);
  EXPECT_EQ(d.cluster.node.threads, 16);
}

TEST_F(ExtensionTest, ConstrainedStillCoordinatesPower) {
  // Even with nodes+threads pinned, the CPU/DRAM split adapts to the app.
  const auto mem = *workloads::find_benchmark("TeaLeaf");
  const auto cpu = *workloads::find_benchmark("miniMD");
  const auto d_mem = sched_.schedule_constrained(mem, Watts(800.0), 4, 24);
  const auto d_cpu = sched_.schedule_constrained(cpu, Watts(800.0), 4, 24);
  EXPECT_GT(d_mem.cluster.node.mem_cap.value(),
            d_cpu.cluster.node.mem_cap.value());
}

TEST_F(ExtensionTest, ConstrainedRespectsBudget) {
  const auto w = *workloads::find_benchmark("SP-MZ");
  for (int nodes : {2, 4, 8}) {
    const auto d = sched_.schedule_constrained(w, Watts(700.0), nodes, 24);
    const auto m = ex_.run_exact(w, d.cluster);
    EXPECT_LE(m.avg_power.value(), 700.0 * 1.01) << nodes;
  }
}

TEST_F(ExtensionTest, UnconstrainedNeverWorseThanConstrained) {
  // Free CLIP must match-or-beat any fixed shape it could also have picked.
  const auto w = *workloads::find_benchmark("TeaLeaf");
  const double budget = 900.0;
  const double free_time =
      ex_.run_exact(w, sched_.schedule(w, Watts(budget)).cluster)
          .time.value();
  for (int nodes : {2, 4, 8}) {
    const auto d = sched_.schedule_constrained(w, Watts(budget), nodes, 24);
    EXPECT_LE(free_time,
              ex_.run_exact(w, d.cluster).time.value() * 1.01)
        << nodes;
  }
}

TEST_F(ExtensionTest, ConstrainedValidatesArguments) {
  const auto w = *workloads::find_benchmark("CoMD");
  EXPECT_THROW((void)sched_.schedule_constrained(w, Watts(900.0), 0),
               PreconditionError);
  EXPECT_THROW((void)sched_.schedule_constrained(w, Watts(900.0), 9),
               PreconditionError);
  EXPECT_THROW((void)sched_.schedule_constrained(w, Watts(900.0), 4, 25),
               PreconditionError);
}

// ----------------------------------------------------------------- job queue ----

TEST_F(ExtensionTest, QueueRunsEveryJob) {
  runtime::QueueOptions opt;
  opt.cluster_budget = Watts(800.0);
  runtime::PowerAwareJobQueue queue(ex_, sched_, opt);
  const auto jobs = workloads::paper_benchmarks();
  const auto report = queue.run(jobs);
  ASSERT_EQ(report.jobs.size(), jobs.size());
  for (const auto& j : report.jobs) {
    EXPECT_GT(j.end_s, j.start_s) << j.app;
    EXPECT_GE(j.nodes, 1) << j.app;
  }
}

TEST_F(ExtensionTest, QueueNeverExceedsClusterBudgetOrNodes) {
  runtime::QueueOptions opt;
  opt.cluster_budget = Watts(700.0);
  runtime::PowerAwareJobQueue queue(ex_, sched_, opt);
  const auto report = queue.run(workloads::paper_benchmarks());
  // Sweep time: at every job start, sum the power/nodes of overlapping jobs.
  for (const auto& a : report.jobs) {
    double watts = 0.0;
    int nodes = 0;
    for (const auto& b : report.jobs) {
      if (b.start_s <= a.start_s && a.start_s < b.end_s) {
        watts += b.budget_w;
        nodes += b.nodes;
      }
    }
    EXPECT_LE(watts, 700.0 * 1.001) << "at t=" << a.start_s;
    EXPECT_LE(nodes, ex_.spec().nodes) << "at t=" << a.start_s;
  }
}

TEST_F(ExtensionTest, PackingBeatsSerialAtTightBudgets) {
  const auto jobs = workloads::paper_benchmarks();
  const Watts budget(600.0);
  const auto serial =
      runtime::run_serially(ex_, sched_, budget, jobs);
  runtime::QueueOptions opt;
  opt.cluster_budget = budget;
  runtime::PowerAwareJobQueue queue(ex_, sched_, opt);
  const auto packed = queue.run(jobs);
  EXPECT_LT(packed.makespan_s, serial.makespan_s);
  EXPECT_LE(packed.mean_turnaround_s, serial.mean_turnaround_s);
}

TEST_F(ExtensionTest, BackfillNeverHurtsMakespan) {
  const auto jobs = workloads::paper_benchmarks();
  runtime::QueueOptions strict;
  strict.cluster_budget = Watts(600.0);
  strict.backfill = false;
  runtime::QueueOptions backfill = strict;
  backfill.backfill = true;
  const double strict_makespan =
      runtime::PowerAwareJobQueue(ex_, sched_, strict).run(jobs).makespan_s;
  const double backfill_makespan =
      runtime::PowerAwareJobQueue(ex_, sched_, backfill)
          .run(jobs)
          .makespan_s;
  EXPECT_LE(backfill_makespan, strict_makespan * 1.001);
}

TEST_F(ExtensionTest, QueueReportAccounting) {
  runtime::QueueOptions opt;
  opt.cluster_budget = Watts(900.0);
  runtime::PowerAwareJobQueue queue(ex_, sched_, opt);
  const auto report = queue.run(
      {*workloads::find_benchmark("CoMD"), *workloads::find_benchmark("EP")});
  EXPECT_GT(report.makespan_s, 0.0);
  EXPECT_GT(report.total_energy_j, 0.0);
  EXPECT_GT(report.node_utilization(), 0.0);
  EXPECT_LE(report.node_utilization(), 1.0);
}

TEST_F(ExtensionTest, QueueValidatesInput) {
  runtime::QueueOptions opt;
  runtime::PowerAwareJobQueue queue(ex_, sched_, opt);
  EXPECT_THROW(
      (void)queue.run(std::vector<workloads::WorkloadSignature>{}),
      PreconditionError);
  opt.cluster_budget = Watts(0.0);
  EXPECT_THROW(runtime::PowerAwareJobQueue(ex_, sched_, opt),
               PreconditionError);
}

}  // namespace
}  // namespace clip
