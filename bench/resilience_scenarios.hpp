// The shared resilience scenario catalog (documented in bench/README.md).
//
// Seven deterministic FaultPlans, parameterized by the fault-free horizon so
// every fault lands at a fixed fraction of the run regardless of budget:
// fault-free control, single and double crashes, thermal degrades, a meter
// storm, an unenforced cap violation, and a combined storm. Used by both the
// resilience bench (static allocation under faults) and the redistribution
// bench (same substrate, runtime power redistribution on vs off), so the two
// report rows are comparable scenario by scenario.
#pragma once

#include <string>
#include <vector>

#include "fault/plan.hpp"

namespace clip::bench {

struct Scenario {
  std::string name;
  fault::FaultPlan plan;
};

inline std::vector<Scenario> make_resilience_scenarios(double horizon_s) {
  std::vector<Scenario> v;
  v.push_back({"fault-free", {}});

  Scenario crash1{"crash-1", {}};
  crash1.plan.crashes.push_back({3, 0.3 * horizon_s});
  v.push_back(crash1);

  Scenario crash2{"crash-2of8", {}};
  crash2.plan.crashes.push_back({2, 0.25 * horizon_s});
  crash2.plan.crashes.push_back({5, 0.5 * horizon_s});
  v.push_back(crash2);

  Scenario degrade{"degrade-2", {}};
  degrade.plan.degrades.push_back({1, 0.2 * horizon_s, 0.6});
  degrade.plan.degrades.push_back({6, 0.4 * horizon_s, 0.8});
  v.push_back(degrade);

  Scenario meter{"meter-storm", {}};
  for (int n = 0; n < 4; ++n)
    meter.plan.meter_faults.push_back(
        {n, 0.1 * horizon_s, 0.6 * horizon_s,
         n % 2 == 0 ? fault::MeterFaultKind::kDropout
                    : fault::MeterFaultKind::kSpike,
         n % 2 == 0 ? 0.0 : 40.0});
  v.push_back(meter);

  Scenario capviol{"cap-violation", {}};
  capviol.plan.cap_violations.push_back(
      {0, 0.1 * horizon_s, 0.8 * horizon_s, 90.0});
  v.push_back(capviol);

  Scenario combined{"combined", {}};
  combined.plan.crashes.push_back({4, 0.35 * horizon_s});
  combined.plan.degrades.push_back({7, 0.15 * horizon_s, 0.7});
  combined.plan.meter_faults.push_back(
      {1, 0.2 * horizon_s, 0.3 * horizon_s, fault::MeterFaultKind::kDropout,
       0.0});
  combined.plan.cap_violations.push_back(
      {2, 0.25 * horizon_s, 0.4 * horizon_s, 70.0});
  v.push_back(combined);
  return v;
}

/// The resilience catalog plus the degraded-operating-mode scenarios (meter
/// blackouts and facility budget cuts, docs/robustness.md). Kept out of
/// make_resilience_scenarios so the resilience/redistribution bench rows
/// stay comparable across releases; used by the recovery bench and the
/// crash-consistency test suite.
inline std::vector<Scenario> make_recovery_scenarios(double horizon_s) {
  std::vector<Scenario> v = make_resilience_scenarios(horizon_s);

  Scenario blackout{"meter-blackout", {}};
  blackout.plan.meter_blackouts.push_back({0.1 * horizon_s, 0.4 * horizon_s});
  blackout.plan.cap_violations.push_back(
      {3, 0.15 * horizon_s, 0.2 * horizon_s, 80.0});
  v.push_back(blackout);

  Scenario brownout{"budget-brownout", {}};
  brownout.plan.budget_cuts.push_back(
      {0.15 * horizon_s, 0.3 * horizon_s, 0.6});
  v.push_back(brownout);

  Scenario modes{"modes-combined", {}};
  modes.plan.crashes.push_back({5, 0.3 * horizon_s});
  modes.plan.meter_blackouts.push_back({0.35 * horizon_s, 0.2 * horizon_s});
  modes.plan.budget_cuts.push_back({0.5 * horizon_s, 0.25 * horizon_s, 0.7});
  v.push_back(modes);
  return v;
}

}  // namespace clip::bench
