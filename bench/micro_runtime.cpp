// Microbenchmarks of the framework itself (google-benchmark): the latency of
// the decision pipeline and its substrates. CLIP is a runtime system — its
// own overhead must be negligible next to a job launch.
#include <benchmark/benchmark.h>

#include "baselines/oracle.hpp"
#include "core/inflection.hpp"
#include "core/predictor.hpp"
#include "core/profiler.hpp"
#include "core/scheduler.hpp"
#include "obs/obs.hpp"
#include "parallel/parallel_for.hpp"
#include "sim/executor.hpp"
#include "sim/rapl.hpp"
#include "stats/linreg.hpp"
#include "stats/piecewise.hpp"
#include "util/rng.hpp"
#include "workloads/catalog.hpp"
#include "workloads/kernels.hpp"

namespace {

using namespace clip;

sim::MeterOptions no_noise() {
  sim::MeterOptions m;
  m.enabled = false;
  return m;
}

sim::SimExecutor& executor() {
  static sim::SimExecutor ex{sim::MachineSpec{}, no_noise()};
  return ex;
}

// ------------------------------------------------------------- substrates ----

void BM_RaplSolve(benchmark::State& state) {
  const sim::MachineSpec spec;
  const sim::RaplSolver solver(spec);
  const auto w = *workloads::find_benchmark("BT-MZ");
  sim::NodeConfig cfg;
  cfg.threads = 16;
  cfg.cpu_cap = Watts(90.0);
  cfg.mem_cap = Watts(40.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(solver.solve(w, 40.0, cfg));
}
BENCHMARK(BM_RaplSolve);

void BM_SimExecutorRun(benchmark::State& state) {
  const auto w = *workloads::find_benchmark("TeaLeaf");
  sim::ClusterConfig cfg;
  cfg.nodes = static_cast<int>(state.range(0));
  cfg.node.threads = 12;
  for (auto _ : state)
    benchmark::DoNotOptimize(executor().run_exact(w, cfg));
}
BENCHMARK(BM_SimExecutorRun)->Arg(1)->Arg(4)->Arg(8);

void BM_MlrFit(benchmark::State& state) {
  Rng rng(3);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 26; ++i) {
    std::vector<double> row(8);
    for (auto& v : row) v = rng.uniform(0.0, 1.0);
    x.push_back(row);
    y.push_back(rng.uniform(2.0, 24.0));
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(
        stats::fit_linear(x, y, {.ridge_lambda = 4.0}));
}
BENCHMARK(BM_MlrFit);

void BM_PiecewiseFit(benchmark::State& state) {
  std::vector<double> x, y;
  for (int i = 1; i <= 24; ++i) {
    x.push_back(i);
    y.push_back(i <= 10 ? i : 10.0 + 0.2 * (i - 10));
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(stats::fit_piecewise_linear(x, y));
}
BENCHMARK(BM_PiecewiseFit);

// --------------------------------------------------------------- decisions ----

void BM_SmartProfile(benchmark::State& state) {
  core::SmartProfiler profiler(executor());
  const auto w = *workloads::find_benchmark("LU-MZ");
  for (auto _ : state) benchmark::DoNotOptimize(profiler.profile(w));
}
BENCHMARK(BM_SmartProfile);

void BM_ClipScheduleCached(benchmark::State& state) {
  core::ClipScheduler sched(executor(), workloads::training_benchmarks());
  const auto w = *workloads::find_benchmark("SP-MZ");
  (void)sched.schedule(w, Watts(800.0));  // warm the knowledge DB
  for (auto _ : state)
    benchmark::DoNotOptimize(sched.schedule(w, Watts(800.0)));
}
BENCHMARK(BM_ClipScheduleCached);

// ----------------------------------------------------------- observability ----
// The obs layer's contract is near-zero cost when detached; these pin the
// three regimes (no session / session without sink / recording) so a
// regression in the hot-path branch shows up as a latency cliff here.

void BM_ObsSpanDetached(benchmark::State& state) {
  for (auto _ : state) {
    obs::ScopedSpan span(nullptr, "bench.detached");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_ObsSpanDetached);

void BM_ObsSpanNoSink(benchmark::State& state) {
  obs::ObsSession session;  // session attached, but no sink: spans stay inert
  for (auto _ : state) {
    obs::ScopedSpan span(&session, "bench.no_sink");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_ObsSpanNoSink);

void BM_ObsSpanRecorded(benchmark::State& state) {
  obs::ObsSession session;
  obs::MemorySink sink;
  session.set_sink(&sink);
  for (auto _ : state) {
    obs::ScopedSpan span(&session, "bench.recorded");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_ObsSpanRecorded);

void BM_ObsCounterAdd(benchmark::State& state) {
  obs::ObsSession session;
  obs::Counter& c = session.metrics().counter("bench.counter");
  for (auto _ : state) {
    c.add();
    benchmark::DoNotOptimize(c.value());
  }
}
BENCHMARK(BM_ObsCounterAdd);

void BM_ObsHistogramRecord(benchmark::State& state) {
  obs::ObsSession session;
  obs::Histogram& h =
      session.metrics().histogram("bench.hist", obs::latency_us_spec());
  double v = 0.5;
  for (auto _ : state) {
    h.record(v);
    v = v < 1e6 ? v * 1.01 : 0.5;
    benchmark::DoNotOptimize(&h);
  }
}
BENCHMARK(BM_ObsHistogramRecord);

void BM_ClipScheduleCachedObserved(benchmark::State& state) {
  // BM_ClipScheduleCached with the full obs pipeline attached — the delta
  // between the two is the cost of observing a cached decision.
  core::ClipScheduler sched(executor(), workloads::training_benchmarks());
  const auto w = *workloads::find_benchmark("SP-MZ");
  (void)sched.schedule(w, Watts(800.0));  // warm the knowledge DB
  obs::ObsSession session;
  obs::MemorySink sink;
  session.set_sink(&sink);
  sched.set_observer(&session);
  for (auto _ : state)
    benchmark::DoNotOptimize(sched.schedule(w, Watts(800.0)));
}
BENCHMARK(BM_ClipScheduleCachedObserved);

void BM_OraclePlan(benchmark::State& state) {
  baselines::OracleScheduler oracle(executor());
  const auto w = *workloads::find_benchmark("SP-MZ");
  for (auto _ : state)
    benchmark::DoNotOptimize(oracle.plan(w, Watts(800.0)));
}
BENCHMARK(BM_OraclePlan);

// ------------------------------------------------------------ host runtime ----

void BM_ThreadPoolRegion(benchmark::State& state) {
  parallel::ThreadPool pool(static_cast<int>(state.range(0)));
  for (auto _ : state)
    pool.run_region([](int, int) { benchmark::DoNotOptimize(0); });
}
BENCHMARK(BM_ThreadPoolRegion)->Arg(1)->Arg(2)->Arg(4);

void BM_ParallelForStatic(benchmark::State& state) {
  parallel::ThreadPool pool(4);
  std::vector<double> data(1 << 14, 1.0);
  for (auto _ : state) {
    parallel::parallel_for(pool, 0, static_cast<std::int64_t>(data.size()),
                           [&](std::int64_t i) { data[i] *= 1.0000001; });
    benchmark::DoNotOptimize(data.data());
  }
}
BENCHMARK(BM_ParallelForStatic);

void BM_KernelStreamTriad(benchmark::State& state) {
  parallel::ThreadPool pool(2);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        workloads::stream_triad(pool, 1 << 15, 2));
}
BENCHMARK(BM_KernelStreamTriad);

void BM_KernelDgemm(benchmark::State& state) {
  parallel::ThreadPool pool(2);
  for (auto _ : state)
    benchmark::DoNotOptimize(workloads::blocked_dgemm(pool, 96));
}
BENCHMARK(BM_KernelDgemm);

}  // namespace

BENCHMARK_MAIN();
