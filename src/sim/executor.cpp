#include "sim/executor.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "util/check.hpp"

namespace clip::sim {

SimExecutor::SimExecutor(MachineSpec spec, MeterOptions meter)
    : spec_(std::move(spec)),
      variability_(spec_),
      rapl_(spec_),
      events_(spec_),
      meter_(meter) {
  spec_.validate();
}

void SimExecutor::set_observer(obs::ObsSession* obs) {
  obs_ = obs;
  if (obs == nullptr) {
    metrics_ = Metrics{};
    return;
  }
  metrics_.runs = &obs->metrics().counter("sim.runs");
  metrics_.node_solves = &obs->metrics().counter("sim.node_solves");
  metrics_.cache_hits = &obs->metrics().counter("sim.exact_cache_hits");
  metrics_.cache_misses = &obs->metrics().counter("sim.exact_cache_misses");
  metrics_.batch_runs = &obs->metrics().counter("sim.batch_runs");
  metrics_.batch_width =
      &obs->metrics().histogram("sim.batch_width", obs::batch_width_spec());
}

void SimExecutor::set_exact_cache(ExactRunCache* cache) {
  cache_ = cache;
  cache_prefix_ = cache != nullptr ? ExactRunCache::encode_spec(spec_)
                                   : std::string();
}

Measurement SimExecutor::run_exact(const workloads::WorkloadSignature& w,
                                   const ClusterConfig& cfg) const {
  // Validate before the cache probe: the spec prefix deliberately omits
  // spec.nodes (topologically identical shards share entries), so a config
  // cached by a larger shard must not smuggle an oversized node count past
  // this executor's bounds check via a hit.
  CLIP_REQUIRE(cfg.nodes >= 1 && cfg.nodes <= spec_.nodes,
               "node count outside the cluster");
  CLIP_REQUIRE(cfg.cpu_cap_overrides.empty() ||
                   static_cast<int>(cfg.cpu_cap_overrides.size()) ==
                       cfg.nodes,
               "per-node cap overrides must match the node count");
  if (cache_ == nullptr) return compute_exact(w, cfg);

  std::string prefix = ExactRunCache::encode_batch_prefix(cache_prefix_, w, cfg);
  ExactRunCache::append_overrides(prefix, cfg.cpu_cap_overrides);
  const CacheKey key{cache_->intern_prefix(prefix),
                     cfg.node.cpu_cap.value(), cfg.node.mem_cap.value()};
  Measurement m;
  if (cache_->lookup(key, m)) {
    if (obs_ != nullptr) metrics_.cache_hits->add();
    return m;
  }
  if (obs_ != nullptr) metrics_.cache_misses->add();
  m = compute_exact(w, cfg);
  cache_->insert(key, m);
  return m;
}

Measurement SimExecutor::run_exact_uncached(
    const workloads::WorkloadSignature& w, const ClusterConfig& cfg) const {
  CLIP_REQUIRE(cfg.nodes >= 1 && cfg.nodes <= spec_.nodes,
               "node count outside the cluster");
  CLIP_REQUIRE(cfg.cpu_cap_overrides.empty() ||
                   static_cast<int>(cfg.cpu_cap_overrides.size()) ==
                       cfg.nodes,
               "per-node cap overrides must match the node count");
  return compute_exact(w, cfg);
}

NodeMeasurement SimExecutor::node_measurement(
    const workloads::WorkloadSignature& w, int threads,
    const OperatingPoint& op) const {
  NodeMeasurement nm;
  nm.time = op.perf.time;
  nm.frequency = op.frequency;
  nm.duty_factor = op.duty_factor;
  nm.cpu_power = op.cpu_power;
  nm.mem_power = op.mem_power;
  nm.achieved_bw_gbps = op.perf.achieved_bw_gbps;
  nm.saturation = op.perf.saturation;
  nm.events = events_.synthesize(w, threads, op.frequency, op.perf);
  return nm;
}

Measurement SimExecutor::compute_exact(const workloads::WorkloadSignature& w,
                                       const ClusterConfig& cfg) const {
  obs::ScopedSpan span(obs_, "sim.run", "sim");
  span.arg("app", w.name);
  span.arg("nodes", cfg.nodes);
  if (obs_ != nullptr) {
    metrics_.runs->add();
    metrics_.node_solves->add(static_cast<std::uint64_t>(
        std::max(cfg.nodes, 0)));
  }
  w.validate();

  const double node_work_s = w.node_base_time_s / cfg.nodes;
  const RaplSolver::Prepared prep = rapl_.prepare(w, node_work_s, cfg.node);

  Measurement m;
  m.nodes.reserve(static_cast<std::size_t>(cfg.nodes));
  Seconds slowest{0.0};
  if (cfg.cpu_cap_overrides.empty() && variability_.uniform()) {
    // Identical caps and multipliers make every node's solve the same pure
    // function call: solve once, replicate the bit-identical measurement.
    const OperatingPoint op =
        rapl_.solve_prepared(w, prep, cfg.node.cpu_cap, cfg.node.mem_cap,
                             variability_.cpu_multiplier(0));
    const NodeMeasurement nm = node_measurement(w, cfg.node.threads, op);
    slowest = nm.time;
    m.nodes.assign(static_cast<std::size_t>(cfg.nodes), nm);
  } else {
    for (int i = 0; i < cfg.nodes; ++i) {
      NodeConfig node_cfg = cfg.node;
      if (!cfg.cpu_cap_overrides.empty())
        node_cfg.cpu_cap = cfg.cpu_cap_overrides[static_cast<std::size_t>(i)];
      const OperatingPoint op =
          rapl_.solve_prepared(w, prep, node_cfg.cpu_cap, node_cfg.mem_cap,
                               variability_.cpu_multiplier(i));
      NodeMeasurement nm = node_measurement(w, node_cfg.threads, op);
      slowest = std::max(slowest, nm.time);
      m.nodes.push_back(std::move(nm));
    }
  }

  m.comm_time = CommModel::evaluate(w, cfg.nodes, node_work_s);
  m.time = slowest + m.comm_time;

  double watts = 0.0;
  for (const auto& nm : m.nodes)
    watts += nm.cpu_power.value() + nm.mem_power.value();
  m.avg_power = Watts(watts);
  m.energy = m.avg_power * m.time;
  return m;
}

FrontierResult SimExecutor::run_batch(const workloads::WorkloadSignature& w,
                                      const ClusterConfig& base,
                                      const std::vector<CapPoint>& caps)
    const {
  CLIP_REQUIRE(base.cpu_cap_overrides.empty(),
               "run_batch shares one (workload, placement) prefix — per-node "
               "cap overrides are scalar-only");
  CLIP_REQUIRE(base.nodes >= 1 && base.nodes <= spec_.nodes,
               "node count outside the cluster");

  if (caps.empty()) return std::make_shared<std::vector<Measurement>>();

  const auto scalar_point = [&](std::size_t i) {
    ClusterConfig cfg = base;
    cfg.node.cpu_cap = caps[i].cpu_cap;
    cfg.node.mem_cap = caps[i].mem_cap;
    return run_exact(w, cfg);
  };
  // Small frontiers: the scalar path is cheaper than the batch setup (the
  // fig7 small-frontier regression in BENCH_eval_engine.json was exactly
  // this bookkeeping with nothing to amortize it over).
  if (caps.size() < kMinBatchFrontier) {
    auto out = std::make_shared<std::vector<Measurement>>();
    out->reserve(caps.size());
    for (std::size_t i = 0; i < caps.size(); ++i)
      out->push_back(scalar_point(i));
    return out;
  }

  obs::ScopedSpan span(obs_, "sim.batch", "sim");
  span.arg("app", w.name);
  span.arg("width", static_cast<int>(caps.size()));
  if (obs_ != nullptr) {
    metrics_.batch_runs->add();
    metrics_.batch_width->record(static_cast<double>(caps.size()));
  }

  // Probe the cache at frontier granularity: one lookup serves the whole
  // call, and a hit shares the stored vector — zero Measurement copies.
  // (Per-point probes are a net loss here: a batched compute costs ~0.4 µs
  // while a point insert costs ~0.7 µs.)
  FrontierKey fkey;
  if (cache_ != nullptr) {
    std::string prefix =
        ExactRunCache::encode_batch_prefix(cache_prefix_, w, base);
    ExactRunCache::append_overrides(prefix, base.cpu_cap_overrides);
    fkey.prefix = cache_->intern_prefix(prefix);
    fkey.caps = caps;
    if (FrontierResult cached = cache_->lookup_frontier(fkey)) {
      if (obs_ != nullptr)
        metrics_.cache_hits->add(static_cast<std::uint64_t>(caps.size()));
      return cached;
    }
  }

  // Dedupe within the frontier: distinct planner cells regularly collapse
  // onto one cap point; compute it once and copy the bit-identical result.
  // Typical frontiers are ~20 points wide, where a quadratic scan over the
  // already-computed uniques beats a node-allocating map; wide frontiers
  // fall back to the map (ordered, so the walk is deterministic — clip-lint
  // D2).
  std::vector<std::size_t> compute_idx;
  std::vector<std::size_t> alias_of(caps.size(), caps.size());
  if (caps.size() <= 64) {
    for (std::size_t i = 0; i < caps.size(); ++i) {
      bool aliased = false;
      for (const std::size_t u : compute_idx) {
        if (caps[u] == caps[i]) {
          alias_of[i] = u;
          aliased = true;
          break;
        }
      }
      if (!aliased) compute_idx.push_back(i);
    }
  } else {
    std::map<std::pair<double, double>, std::size_t> first_at;
    for (std::size_t i = 0; i < caps.size(); ++i) {
      const auto [it, inserted] = first_at.try_emplace(
          std::make_pair(caps[i].cpu_cap.value(), caps[i].mem_cap.value()),
          i);
      if (inserted) {
        compute_idx.push_back(i);
      } else {
        alias_of[i] = it->second;
      }
    }
  }

  auto out = std::make_shared<std::vector<Measurement>>(caps.size());
  const std::size_t unique = compute_idx.size();
  if (obs_ != nullptr) {
    metrics_.runs->add(static_cast<std::uint64_t>(unique));
    metrics_.node_solves->add(static_cast<std::uint64_t>(unique) *
                              static_cast<std::uint64_t>(base.nodes));
    if (cache_ != nullptr)
      metrics_.cache_misses->add(static_cast<std::uint64_t>(unique));
  }
  w.validate();

  const double node_work_s = w.node_base_time_s / base.nodes;
  const RaplSolver::Prepared prep = rapl_.prepare(w, node_work_s, base.node);
  // Communication is cap-independent: one evaluation serves the frontier.
  const Seconds comm = CommModel::evaluate(w, base.nodes, node_work_s);

  // SoA cap arrays for the frontier kernel.
  std::vector<Watts> cpu_caps(unique), mem_caps(unique);
  for (std::size_t u = 0; u < unique; ++u) {
    cpu_caps[u] = caps[compute_idx[u]].cpu_cap;
    mem_caps[u] = caps[compute_idx[u]].mem_cap;
  }

  const auto assemble = [&](const OperatingPoint& op) {
    Measurement m;
    const NodeMeasurement nm = node_measurement(w, base.node.threads, op);
    m.nodes.assign(static_cast<std::size_t>(base.nodes), nm);
    m.comm_time = comm;
    m.time = nm.time + comm;
    double watts = 0.0;
    for (const auto& node : m.nodes)
      watts += node.cpu_power.value() + node.mem_power.value();
    m.avg_power = Watts(watts);
    m.energy = m.avg_power * m.time;
    return m;
  };

  if (variability_.uniform()) {
    std::vector<OperatingPoint> ops(unique);
    rapl_.solve_frontier(w, prep, cpu_caps.data(), mem_caps.data(), unique,
                         variability_.cpu_multiplier(0), ops.data(),
                         batch_simd_);
    for (std::size_t u = 0; u < unique; ++u)
      (*out)[compute_idx[u]] = assemble(ops[u]);
  } else {
    // Per-node multipliers: one frontier solve per node index, assembled
    // in node order so every accumulation matches the scalar loop.
    std::vector<std::vector<OperatingPoint>> per_node(
        static_cast<std::size_t>(base.nodes),
        std::vector<OperatingPoint>(unique));
    for (int i = 0; i < base.nodes; ++i)
      rapl_.solve_frontier(w, prep, cpu_caps.data(), mem_caps.data(), unique,
                           variability_.cpu_multiplier(i),
                           per_node[static_cast<std::size_t>(i)].data(),
                           batch_simd_);
    for (std::size_t u = 0; u < unique; ++u) {
      Measurement m;
      m.nodes.reserve(static_cast<std::size_t>(base.nodes));
      Seconds slowest{0.0};
      for (int i = 0; i < base.nodes; ++i) {
        NodeMeasurement nm = node_measurement(
            w, base.node.threads, per_node[static_cast<std::size_t>(i)][u]);
        slowest = std::max(slowest, nm.time);
        m.nodes.push_back(std::move(nm));
      }
      m.comm_time = comm;
      m.time = slowest + comm;
      double watts = 0.0;
      for (const auto& nm : m.nodes)
        watts += nm.cpu_power.value() + nm.mem_power.value();
      m.avg_power = Watts(watts);
      m.energy = m.avg_power * m.time;
      (*out)[compute_idx[u]] = m;
    }
  }

  // Copy in-frontier duplicates; with a cache they would have been hits on
  // the scalar path (first point inserts, later points hit), so the counter
  // keeps that meaning.
  std::uint64_t alias_hits = 0;
  for (std::size_t i = 0; i < caps.size(); ++i) {
    if (alias_of[i] == caps.size()) continue;
    (*out)[i] = (*out)[alias_of[i]];
    ++alias_hits;
  }
  if (cache_ != nullptr && alias_hits > 0 && obs_ != nullptr)
    metrics_.cache_hits->add(alias_hits);

  if (cache_ != nullptr) cache_->insert_frontier(std::move(fkey), out);
  return out;
}

Measurement SimExecutor::run(const workloads::WorkloadSignature& w,
                             const ClusterConfig& cfg) {
  Measurement m = run_exact(w, cfg);
  meter_.observe(m);
  return m;
}

PhasedMeasurement SimExecutor::run_phased_exact(
    const workloads::PhasedWorkload& w,
    const PhasedClusterConfig& cfg) const {
  w.validate();
  CLIP_REQUIRE(cfg.phase_nodes.size() == w.phases.size(),
               "one node config per phase required");
  CLIP_REQUIRE(cfg.nodes >= 1 && cfg.nodes <= spec_.nodes,
               "node count outside the cluster");

  PhasedMeasurement total;
  double energy = 0.0;
  for (std::size_t i = 0; i < w.phases.size(); ++i) {
    ClusterConfig phase_cfg;
    phase_cfg.nodes = cfg.nodes;
    phase_cfg.node = cfg.phase_nodes[i];
    const Measurement m = run_exact(w.phase_signature(i), phase_cfg);

    PhaseMeasurement pm;
    pm.phase = w.phases[i].name;
    pm.time = m.time;
    pm.avg_power = m.avg_power;
    pm.energy = m.energy;
    pm.frequency = m.nodes.front().frequency;
    pm.threads = phase_cfg.node.threads;
    total.time += m.time;
    energy += m.energy.value();
    total.phases.push_back(std::move(pm));
  }
  total.energy = Joules(energy);
  total.avg_power = total.energy / total.time;
  return total;
}

}  // namespace clip::sim
