// Tests for knowledge-database machine fingerprinting: a profile recorded
// on one machine is not evidence about another.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "core/knowledge_db.hpp"
#include "core/scheduler.hpp"
#include "runtime/launcher.hpp"
#include "sim/executor.hpp"
#include "sim/presets.hpp"
#include "workloads/catalog.hpp"

namespace clip::core {
namespace {

sim::MeterOptions no_noise() {
  sim::MeterOptions m;
  m.enabled = false;
  return m;
}

TEST(Fingerprint, DistinctMachinesHaveDistinctFingerprints) {
  std::set<std::string> prints;
  for (const auto& p : sim::all_presets())
    prints.insert(p.spec.fingerprint());
  EXPECT_EQ(prints.size(), sim::all_presets().size());
}

TEST(Fingerprint, SameSpecSameFingerprint) {
  EXPECT_EQ(sim::MachineSpec{}.fingerprint(),
            sim::haswell_testbed().fingerprint());
}

TEST(Fingerprint, SensitiveToPowerParameters) {
  sim::MachineSpec a;
  sim::MachineSpec b;
  b.core_max_w += 0.5;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

class FingerprintDbTest : public ::testing::Test {
 protected:
  std::filesystem::path path_ =
      std::filesystem::temp_directory_path() / "clip_fingerprint_db.csv";
  void SetUp() override { std::filesystem::remove(path_); }
  void TearDown() override { std::filesystem::remove(path_); }
};

TEST_F(FingerprintDbTest, InsertStampsTheMachine) {
  KnowledgeDb db(KnowledgeDbShape{24, "machine-A"});
  KnowledgeRecord r;
  r.name = "X";
  r.parameters = "p";
  db.insert(r);
  EXPECT_EQ(db.lookup("X", "p")->machine, "machine-A");
}

TEST_F(FingerprintDbTest, ForeignRecordsDroppedOnLoad) {
  {
    KnowledgeDb writer(KnowledgeDbShape{24, "machine-A"});
    KnowledgeRecord r;
    r.name = "X";
    r.parameters = "p";
    writer.insert(r);
    writer.save(path_);
  }
  KnowledgeDb same(KnowledgeDbShape{24, "machine-A"});
  same.load(path_);
  EXPECT_EQ(same.size(), 1u);
  EXPECT_EQ(same.last_load_dropped(), 0u);

  KnowledgeDb other(KnowledgeDbShape{24, "machine-B"});
  other.load(path_);
  EXPECT_EQ(other.size(), 0u);
  EXPECT_EQ(other.last_load_dropped(), 1u);
}

TEST_F(FingerprintDbTest, EmptyFingerprintAcceptsLegacyRecords) {
  {
    KnowledgeDb writer(KnowledgeDbShape{24, "machine-A"});
    KnowledgeRecord r;
    r.name = "X";
    r.parameters = "p";
    writer.insert(r);
    writer.save(path_);
  }
  KnowledgeDb legacy(KnowledgeDbShape{24, ""});
  legacy.load(path_);
  EXPECT_EQ(legacy.size(), 1u);
}

TEST_F(FingerprintDbTest, LauncherReprofilesOnForeignDb) {
  const auto app = *workloads::find_benchmark("TeaLeaf");
  // Record on the Haswell testbed.
  {
    sim::SimExecutor ex(sim::haswell_testbed(), no_noise());
    runtime::Launcher launcher(ex, workloads::training_benchmarks(),
                               path_);
    runtime::JobSpec spec;
    spec.app = app;
    spec.cluster_budget = Watts(800.0);
    (void)launcher.run(spec);
  }
  // A different machine must not reuse those profiles.
  sim::SimExecutor other(sim::broadwell_fat(), no_noise());
  runtime::Launcher launcher(other, workloads::training_benchmarks(),
                             path_);
  runtime::JobSpec spec;
  spec.app = app;
  spec.cluster_budget = Watts(800.0);
  const auto result = launcher.run(spec);
  EXPECT_GT(result.scheduling_overhead.value(), 0.0)
      << "foreign profile was reused instead of re-profiling";
}

TEST_F(FingerprintDbTest, SchedulerDbCarriesExecutorFingerprint) {
  sim::SimExecutor ex(sim::MachineSpec{}, no_noise());
  ClipScheduler sched(ex, workloads::training_benchmarks());
  EXPECT_EQ(sched.knowledge_db().shape().machine_fingerprint,
            ex.spec().fingerprint());
}

}  // namespace
}  // namespace clip::core
