// Property tests for the batch-vectorized simulator core
// (SimExecutor::run_batch). The contract under test is *bit* identity:
// evaluating a whole cap frontier in one call — with subexpression
// hoisting, SoA state, optional SIMD, in-frontier deduplication and
// frontier-granular caching — must reproduce the scalar run_exact loop to
// the last mantissa bit, for every field of every Measurement. Anything
// weaker would let batching change figure bytes.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "obs/session.hpp"
#include "sim/exec_cache.hpp"
#include "sim/executor.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "workloads/catalog.hpp"
#include "workloads/phases.hpp"

namespace clip {
namespace {

sim::MeterOptions no_noise() {
  sim::MeterOptions m;
  m.enabled = false;
  return m;
}

std::uint64_t counter(obs::ObsSession& s, std::string_view name) {
  const obs::Counter* c = s.metrics().find_counter(name);
  return c == nullptr ? 0 : c->value();
}

/// Exact double equality, NaN-safe and -0.0-strict: compares the bits.
void expect_bits(double a, double b, const char* what) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b))
      << what << ": " << a << " vs " << b;
}

void expect_bit_identical(const sim::Measurement& a,
                          const sim::Measurement& b) {
  expect_bits(a.time.value(), b.time.value(), "time");
  expect_bits(a.comm_time.value(), b.comm_time.value(), "comm_time");
  expect_bits(a.avg_power.value(), b.avg_power.value(), "avg_power");
  expect_bits(a.energy.value(), b.energy.value(), "energy");
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t n = 0; n < a.nodes.size(); ++n) {
    const sim::NodeMeasurement& x = a.nodes[n];
    const sim::NodeMeasurement& y = b.nodes[n];
    expect_bits(x.time.value(), y.time.value(), "node.time");
    expect_bits(x.frequency.value(), y.frequency.value(), "node.frequency");
    expect_bits(x.duty_factor, y.duty_factor, "node.duty_factor");
    expect_bits(x.cpu_power.value(), y.cpu_power.value(), "node.cpu_power");
    expect_bits(x.mem_power.value(), y.mem_power.value(), "node.mem_power");
    expect_bits(x.achieved_bw_gbps, y.achieved_bw_gbps,
                "node.achieved_bw_gbps");
    expect_bits(x.saturation, y.saturation, "node.saturation");
    expect_bits(x.events.icache_misses_per_s, y.events.icache_misses_per_s,
                "events.icache");
    expect_bits(x.events.read_bw_gbps, y.events.read_bw_gbps, "events.read");
    expect_bits(x.events.write_bw_gbps, y.events.write_bw_gbps,
                "events.write");
    expect_bits(x.events.l3_miss_local_per_s, y.events.l3_miss_local_per_s,
                "events.l3_local");
    expect_bits(x.events.l3_miss_remote_per_s, y.events.l3_miss_remote_per_s,
                "events.l3_remote");
    expect_bits(x.events.cycles_active_per_s, y.events.cycles_active_per_s,
                "events.cycles");
    expect_bits(x.events.instructions_per_s, y.events.instructions_per_s,
                "events.instructions");
    expect_bits(x.events.perf_ratio_full_half, y.events.perf_ratio_full_half,
                "events.perf_ratio");
  }
}

/// A catalog signature with its continuous model inputs jittered — keeps
/// every field in its physically sensible range while leaving no chance the
/// batch path only works for the ten curated benchmarks.
workloads::WorkloadSignature random_workload(Rng& rng) {
  const auto& cat = workloads::paper_benchmarks();
  workloads::WorkloadSignature w =
      cat[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(cat.size()) - 1))];
  w.node_base_time_s *= rng.uniform(0.5, 2.0);
  w.serial_fraction = rng.uniform(0.0, 0.2);
  w.memory_boundedness = rng.uniform(0.0, 1.0);
  w.bw_per_core_gbps = rng.uniform(0.1, 6.0);
  w.sync_coeff_s = rng.uniform(0.0, 0.02);
  w.shared_data_fraction = rng.uniform(0.0, 1.0);
  w.compute_intensity = rng.uniform(0.2, 1.0);
  w.ipc = rng.uniform(0.5, 3.0);
  w.icache_pressure = rng.uniform(0.0, 0.3);
  w.write_fraction = rng.uniform(0.1, 0.6);
  w.comm_latency_s = rng.uniform(0.0, 0.2);
  return w;
}

/// A random placement: node count, even thread count, affinity, mem level.
sim::ClusterConfig random_base(Rng& rng, const sim::MachineSpec& spec) {
  sim::ClusterConfig cfg;
  cfg.nodes = rng.uniform_int(1, spec.nodes);
  cfg.node.threads =
      2 * rng.uniform_int(1, spec.shape.total_cores() / 2);
  cfg.node.affinity = rng.uniform() < 0.5 ? parallel::AffinityPolicy::kCompact
                                          : parallel::AffinityPolicy::kScatter;
  cfg.node.mem_level =
      sim::kAllMemLevels[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<int>(std::size(sim::kAllMemLevels)) - 1))];
  return cfg;
}

std::vector<sim::CapPoint> random_caps(Rng& rng, std::size_t width) {
  std::vector<sim::CapPoint> caps(width);
  for (sim::CapPoint& p : caps) {
    p.cpu_cap = Watts(rng.uniform(25.0, 130.0));
    // Keep the DRAM cap above the worst-case DIMM base power (2 sockets
    // × 5 W) so memory-bound draws always have a positive bandwidth budget.
    p.mem_cap = Watts(rng.uniform(12.0, 60.0));
  }
  return caps;
}

/// The core property: run_batch == scalar run_exact loop, bit for bit.
void check_batch_equals_scalar(sim::SimExecutor& ex, Rng& rng, int trials) {
  for (int t = 0; t < trials; ++t) {
    const workloads::WorkloadSignature w = random_workload(rng);
    const sim::ClusterConfig base = random_base(rng, ex.spec());
    const std::size_t width =
        static_cast<std::size_t>(rng.uniform_int(4, 64));
    const std::vector<sim::CapPoint> caps = random_caps(rng, width);

    const sim::FrontierResult batch = ex.run_batch(w, base, caps);
    ASSERT_EQ(batch->size(), caps.size());
    for (std::size_t i = 0; i < caps.size(); ++i) {
      sim::ClusterConfig point = base;
      point.node.cpu_cap = caps[i].cpu_cap;
      point.node.mem_cap = caps[i].mem_cap;
      expect_bit_identical((*batch)[i], ex.run_exact(w, point));
    }
  }
}

// ------------------------------------------------------------ bit identity ---

TEST(BatchIdentity, MatchesScalarAcrossRandomFrontiers) {
  sim::SimExecutor ex(sim::MachineSpec{}, no_noise());
  Rng rng(0x11u);
  check_batch_equals_scalar(ex, rng, 30);
}

TEST(BatchIdentity, MatchesScalarUnderNodeVariability) {
  // sigma > 0 makes nodes heterogeneous: the batch path must take the
  // per-node (non-uniform) kernel and still agree bit for bit.
  sim::MachineSpec spec;
  spec.variability_sigma = 0.08;
  spec.variability_seed = 7;
  sim::SimExecutor ex(spec, no_noise());
  Rng rng(0x22u);
  check_batch_equals_scalar(ex, rng, 20);
}

TEST(BatchIdentity, MatchesScalarWithCacheAttached) {
  // The frontier cache must be invisible to results: probe/fill at frontier
  // granularity, same bytes out.
  sim::SimExecutor ex(sim::MachineSpec{}, no_noise());
  sim::ExactRunCache cache;
  ex.set_exact_cache(&cache);
  Rng rng(0x33u);
  check_batch_equals_scalar(ex, rng, 15);
  EXPECT_GT(cache.stats().frontier_entries, 0u);
}

TEST(BatchIdentity, PhasedExecutionUnaffectedByBatchMachinery) {
  // run_phased_exact composes the same node model the batch kernel hoists;
  // attaching a cache/observer or toggling the SIMD kernel must not perturb
  // phased results by a bit.
  sim::SimExecutor plain(sim::MachineSpec{}, no_noise());
  sim::SimExecutor tooled(sim::MachineSpec{}, no_noise());
  sim::ExactRunCache cache;
  obs::ObsSession session;
  tooled.set_exact_cache(&cache);
  tooled.set_observer(&session);
  tooled.set_batch_simd(!tooled.batch_simd());

  Rng rng(0x44u);
  for (const workloads::PhasedWorkload& w : workloads::phased_benchmarks()) {
    sim::PhasedClusterConfig cfg;
    cfg.nodes = rng.uniform_int(1, 4);
    for (std::size_t p = 0; p < w.phases.size(); ++p) {
      sim::NodeConfig node;
      node.threads = 2 * rng.uniform_int(1, 12);
      node.cpu_cap = Watts(rng.uniform(40.0, 120.0));
      node.mem_cap = Watts(rng.uniform(10.0, 50.0));
      cfg.phase_nodes.push_back(node);
    }
    const sim::PhasedMeasurement a = plain.run_phased_exact(w, cfg);
    const sim::PhasedMeasurement b = tooled.run_phased_exact(w, cfg);
    expect_bits(a.time.value(), b.time.value(), "phased.time");
    expect_bits(a.avg_power.value(), b.avg_power.value(), "phased.avg_power");
    expect_bits(a.energy.value(), b.energy.value(), "phased.energy");
    ASSERT_EQ(a.phases.size(), b.phases.size());
    for (std::size_t p = 0; p < a.phases.size(); ++p)
      expect_bits(a.phases[p].time.value(), b.phases[p].time.value(),
                  "phase.time");
  }
}

// ------------------------------------------------------------ SIMD kernel ----

TEST(BatchSimd, KernelAndScalarFallbackAgreeBitForBit) {
  // When the SSE2 kernel is compiled in, A/B the same frontiers through
  // both paths. When it is not, set_batch_simd must be an inert toggle.
  sim::SimExecutor simd_ex(sim::MachineSpec{}, no_noise());
  sim::SimExecutor scalar_ex(sim::MachineSpec{}, no_noise());
  EXPECT_EQ(simd_ex.batch_simd(), sim::RaplSolver::simd_compiled());
  simd_ex.set_batch_simd(true);
  scalar_ex.set_batch_simd(false);

  Rng rng(0x55u);
  for (int t = 0; t < 20; ++t) {
    const workloads::WorkloadSignature w = random_workload(rng);
    const sim::ClusterConfig base = random_base(rng, simd_ex.spec());
    const std::vector<sim::CapPoint> caps =
        random_caps(rng, static_cast<std::size_t>(rng.uniform_int(4, 48)));
    const sim::FrontierResult a = simd_ex.run_batch(w, base, caps);
    const sim::FrontierResult b = scalar_ex.run_batch(w, base, caps);
    ASSERT_EQ(a->size(), b->size());
    for (std::size_t i = 0; i < a->size(); ++i)
      expect_bit_identical((*a)[i], (*b)[i]);
  }
}

// ----------------------------------------------------- threshold behaviour ---

TEST(BatchThreshold, SmallFrontiersBypassBatchMachinery) {
  // kMinBatchFrontier is a perf contract (fig7's frontiers are narrow):
  // below it run_batch must not pay any batch setup, which we observe
  // through the sim.batch_runs counter staying flat.
  EXPECT_EQ(sim::SimExecutor::kMinBatchFrontier, 4u);

  sim::SimExecutor ex(sim::MachineSpec{}, no_noise());
  obs::ObsSession session;
  ex.set_observer(&session);
  const auto w = *workloads::find_benchmark("TeaLeaf");
  Rng rng(0x66u);
  const sim::ClusterConfig base = random_base(rng, ex.spec());

  const std::vector<sim::CapPoint> narrow =
      random_caps(rng, sim::SimExecutor::kMinBatchFrontier - 1);
  const sim::FrontierResult a = ex.run_batch(w, base, narrow);
  EXPECT_EQ(counter(session, "sim.batch_runs"), 0u);
  EXPECT_EQ(counter(session, "sim.runs"), narrow.size());
  // The bypass still honors the result contract.
  for (std::size_t i = 0; i < narrow.size(); ++i) {
    sim::ClusterConfig point = base;
    point.node.cpu_cap = narrow[i].cpu_cap;
    point.node.mem_cap = narrow[i].mem_cap;
    expect_bit_identical((*a)[i], ex.run_exact(w, point));
  }

  const std::vector<sim::CapPoint> wide =
      random_caps(rng, sim::SimExecutor::kMinBatchFrontier);
  (void)ex.run_batch(w, base, wide);
  EXPECT_EQ(counter(session, "sim.batch_runs"), 1u);
}

TEST(BatchThreshold, EmptyFrontierIsANoOp) {
  sim::SimExecutor ex(sim::MachineSpec{}, no_noise());
  obs::ObsSession session;
  ex.set_observer(&session);
  const auto w = *workloads::find_benchmark("CoMD");
  const sim::FrontierResult r = ex.run_batch(w, sim::ClusterConfig{}, {});
  EXPECT_TRUE(r->empty());
  EXPECT_EQ(counter(session, "sim.runs"), 0u);
  EXPECT_EQ(counter(session, "sim.batch_runs"), 0u);
}

TEST(BatchThreshold, PerNodeOverridesAreScalarOnly) {
  sim::SimExecutor ex(sim::MachineSpec{}, no_noise());
  const auto w = *workloads::find_benchmark("CoMD");
  sim::ClusterConfig base;
  base.nodes = 2;
  base.cpu_cap_overrides = {Watts(90.0), Watts(85.0)};
  Rng rng(0x77u);
  EXPECT_THROW((void)ex.run_batch(w, base, random_caps(rng, 8)),
               PreconditionError);
}

// ------------------------------------------------- cache + counter wiring ----

TEST(BatchCache, ReplayServesTheWholeFrontierWithoutRecompute) {
  sim::SimExecutor ex(sim::MachineSpec{}, no_noise());
  sim::ExactRunCache cache;
  obs::ObsSession session;
  ex.set_exact_cache(&cache);
  ex.set_observer(&session);

  const auto w = *workloads::find_benchmark("TeaLeaf");
  Rng rng(0x88u);
  const sim::ClusterConfig base = random_base(rng, ex.spec());
  const std::vector<sim::CapPoint> caps = random_caps(rng, 16);

  const sim::FrontierResult first = ex.run_batch(w, base, caps);
  EXPECT_EQ(counter(session, "sim.runs"), caps.size());
  EXPECT_EQ(counter(session, "sim.exact_cache_misses"), caps.size());
  EXPECT_EQ(cache.stats().frontier_entries, 1u);

  const sim::FrontierResult replay = ex.run_batch(w, base, caps);
  // A hit hands back the stored vector — same object, zero copies.
  EXPECT_EQ(replay.get(), first.get());
  EXPECT_EQ(counter(session, "sim.runs"), caps.size());
  EXPECT_EQ(counter(session, "sim.exact_cache_hits"), caps.size());
  EXPECT_GE(cache.stats().hits, caps.size());

  // A different frontier under the same prefix is its own entry.
  (void)ex.run_batch(w, base, random_caps(rng, 16));
  EXPECT_EQ(cache.stats().frontier_entries, 2u);
}

TEST(BatchCache, InFrontierDuplicatesComputeOnce) {
  sim::SimExecutor ex(sim::MachineSpec{}, no_noise());
  sim::ExactRunCache cache;
  obs::ObsSession session;
  ex.set_exact_cache(&cache);
  ex.set_observer(&session);

  const auto w = *workloads::find_benchmark("BT-MZ");
  Rng rng(0x99u);
  const sim::ClusterConfig base = random_base(rng, ex.spec());
  std::vector<sim::CapPoint> caps = random_caps(rng, 6);
  // Alias half the frontier onto the first points (the oracle's
  // demand-tight cap landing on a grid point, writ large).
  caps.push_back(caps[0]);
  caps.push_back(caps[2]);
  caps.push_back(caps[0]);

  const sim::FrontierResult r = ex.run_batch(w, base, caps);
  EXPECT_EQ(counter(session, "sim.runs"), 6u);
  EXPECT_EQ(counter(session, "sim.exact_cache_misses"), 6u);
  EXPECT_EQ(counter(session, "sim.exact_cache_hits"), 3u);
  expect_bit_identical((*r)[6], (*r)[0]);
  expect_bit_identical((*r)[7], (*r)[2]);
  expect_bit_identical((*r)[8], (*r)[0]);
}

TEST(BatchCache, FrontierStoreEvictsFifoAtCapacity) {
  sim::ExactCacheOptions opt;
  opt.max_frontier_entries = 2;
  sim::ExactRunCache cache(opt);
  sim::SimExecutor ex(sim::MachineSpec{}, no_noise());
  ex.set_exact_cache(&cache);

  const auto w = *workloads::find_benchmark("TeaLeaf");
  Rng rng(0xAAu);
  const sim::ClusterConfig base = random_base(rng, ex.spec());
  for (int i = 0; i < 5; ++i) (void)ex.run_batch(w, base, random_caps(rng, 8));
  EXPECT_EQ(cache.stats().frontier_entries, 2u);
}

}  // namespace
}  // namespace clip
