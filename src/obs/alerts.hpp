// Declarative SLO / alert engine over the flight recorder.
//
// Rules are evaluated against an `obs::Timeline` — the cluster's simulated
// time axis — so a verdict ("the budget was violated", "the queue never
// drained", "we entered brownout twice") is a pure, deterministic function
// of the recorded run: the same timeline always yields the same outcomes,
// byte for byte, which is what lets `clipctl alerts` act as a CI gate.
// Quantile rules may alternatively resolve against a MetricsRegistry
// histogram (e.g. `p99(queue.decision_latency_us)` — host-time latency that
// has no simulated-seconds series).
//
// Each fired rule is assigned a *firing instant* on simulated time: the
// first moment the rule's predicate became true (first sample above the
// threshold, the instant cumulative time-above crossed the budget, the
// N+1-th matching event). `evaluate_and_record` appends those instants as
// `alert` events back into the flight recorder, so alerts land next to the
// faults and mode transitions that caused them.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/timeline.hpp"

namespace clip::obs {

enum class AlertSeverity {
  kInfo = 0,
  kWarning = 1,
  kCritical = 2,
};

[[nodiscard]] const char* to_string(AlertSeverity severity);

enum class AlertKind {
  /// Last recorded sample of `series` is above `threshold`.
  kValueAbove,
  /// Total simulated seconds `series` spent above `level` (step-function
  /// semantics, window = [0, end of timeline]) exceeds `threshold`.
  kTimeAbove,
  /// The `level`-quantile of the series' sample values (nearest-rank over
  /// the recorded points) exceeds `threshold`; falls back to a
  /// MetricsRegistry histogram of the same name when the timeline has no
  /// such series.
  kQuantileAbove,
  /// More than `threshold` events in stream `series` whose label starts
  /// with `prefix` (empty prefix matches every event).
  kEventCount,
  /// More than `threshold` transitions into a degraded mode on the `mode`
  /// event stream. `prefix` names the mode ("METER_BLACKOUT",
  /// "BUDGET_BROWNOUT"); empty matches any non-NORMAL mode entry.
  kModeTransition,
};

/// One declarative rule: `name severity expr > threshold`. See
/// AlertEngine::parse_rules for the textual form.
struct AlertRule {
  std::string name;
  AlertKind kind = AlertKind::kValueAbove;
  AlertSeverity severity = AlertSeverity::kCritical;
  std::string series;      ///< sample series or event stream
  double level = 0.0;      ///< kTimeAbove: level; kQuantileAbove: quantile
  std::string prefix;      ///< event-label prefix filter
  double threshold = 0.0;  ///< fires when observed > threshold

  void validate() const;
  /// The rule's expression in the textual DSL, e.g.
  /// `time_above(node0.power_w, 120) > 5`.
  [[nodiscard]] std::string expression() const;
};

struct AlertOutcome {
  AlertRule rule;
  bool fired = false;
  double observed = 0.0;  ///< the measured quantity (0 when no data)
  double at_s = 0.0;      ///< firing instant on simulated time
  std::string detail;     ///< human-readable one-liner
};

class AlertEngine {
 public:
  AlertEngine() = default;
  explicit AlertEngine(std::vector<AlertRule> rules);

  void add_rule(AlertRule rule);
  [[nodiscard]] const std::vector<AlertRule>& rules() const { return rules_; }

  /// Evaluate every rule over the timeline. Deterministic: outcomes are in
  /// rule order and every double flows from recorded samples. `metrics` is
  /// optional and only consulted for kQuantileAbove rules whose series is
  /// absent from the timeline.
  [[nodiscard]] std::vector<AlertOutcome> evaluate(
      const Timeline& timeline,
      const MetricsRegistry* metrics = nullptr) const;

  /// evaluate(), then append one `alert` event per fired rule into the same
  /// flight recorder (sorted by firing instant, so the stream's
  /// non-decreasing-time invariant holds) plus a final `alert.firing`
  /// sample carrying the fired count. Call once per recorded run.
  std::vector<AlertOutcome> evaluate_and_record(
      Timeline& timeline, const MetricsRegistry* metrics = nullptr) const;

  /// The built-in SLO catalog for power-aware queue runs (see
  /// docs/observability.md for the rendered table).
  [[nodiscard]] static std::vector<AlertRule> default_rules();

  /// Parse the textual rule DSL, one rule per line:
  ///   <name> <severity> value(<series>) > <threshold>
  ///   <name> <severity> time_above(<series>, <level>) > <threshold>
  ///   <name> <severity> p<Q>(<series>) > <threshold>       # p99, p50, ...
  ///   <name> <severity> events(<stream>[, <prefix>]) > <threshold>
  ///   <name> <severity> mode([<state-prefix>]) > <threshold>
  /// severity is info | warning | critical; `#` starts a comment. Throws
  /// PreconditionError (with `context` in the message) on malformed input.
  [[nodiscard]] static std::vector<AlertRule> parse_rules(
      const std::string& text, const std::string& context);

  /// Fixed-width text table of outcomes in rule order, deterministic for
  /// fixed outcomes.
  [[nodiscard]] static std::string render_table(
      const std::vector<AlertOutcome>& outcomes);

  /// JSON rendering: {"alerts":[...],"fired":N}. Doubles shortest-exact.
  [[nodiscard]] static std::string render_json(
      const std::vector<AlertOutcome>& outcomes);

  /// The CI contract: 0 when nothing fired, 1 when any rule fired.
  [[nodiscard]] static int exit_code(
      const std::vector<AlertOutcome>& outcomes);

 private:
  std::vector<AlertRule> rules_;
};

}  // namespace clip::obs
