// Crash consistency of the journaled event loop (docs/robustness.md). For
// every scenario in the shared recovery catalog (resilience faults plus the
// degraded operating modes) the bench records a journaled reference run,
// kills the coordinator at five boundaries (start, quartiles, end) and
// recovers from the truncated journal; a recovery "fails" when the resumed
// run is not byte-identical to the reference (report fingerprint + timeline
// CSV). It then prices the journal: the ext_queue_throughput budget sweep
// (FCFS + backfill at five budgets) runs journal-off and journal-on, and
// the median of paired CPU-time ratios is reported as overhead_pct (floored
// to an integer in the JSON). `--json` writes
// BENCH_recovery.json (schema in bench/README.md), which
// `scripts/regression_gate.sh --recovery` gates on: zero recovery failures,
// overhead within its bound.
#include <algorithm>
#include <ctime>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>

#include "bench_common.hpp"
#include "core/scheduler.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "obs/timeline.hpp"
#include "resilience_scenarios.hpp"
#include "runtime/journal.hpp"
#include "runtime/queue.hpp"
#include "util/strings.hpp"

using namespace clip;

namespace {

/// Bit-exact textual fingerprint of one run: hexfloat report scalars, the
/// per-job table, and the whole timeline CSV.
std::string fingerprint(const runtime::QueueReport& r,
                        const obs::Timeline& timeline) {
  std::ostringstream os;
  os << std::hexfloat << r.makespan_s << '|' << r.mean_turnaround_s << '|'
     << r.total_energy_j << '|' << r.retries << '|' << r.jobs_failed << '|'
     << r.caps_reprogrammed << '|' << r.violation_s << '|' << r.violation_ws;
  for (const auto& j : r.jobs)
    os << '\n'
       << j.app << ',' << j.start_s << ',' << j.end_s << ',' << j.nodes << ','
       << j.budget_w << ',' << j.attempts << ',' << j.completed;
  os << '\n' << timeline.to_csv_string();
  return os.str();
}

struct RunResult {
  runtime::QueueReport report;
  std::string fp;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchContext ctx(argc, argv);
  bool json = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--json") json = true;

  sim::SimExecutor ex = bench::make_exact_testbed();
  core::ClipScheduler sched(ex, workloads::training_benchmarks());
  const auto apps = workloads::paper_benchmarks();
  const double budget = 700.0;

  runtime::QueueOptions opt;
  opt.cluster_budget = Watts(budget);
  std::vector<runtime::QueueJob> jobs;
  for (const auto& a : apps) jobs.push_back({a, 0});

  // Warm the knowledge DB so the reference run and every recovery schedule
  // from identical cached profiles (profiling cost is billed once).
  const double horizon =
      runtime::PowerAwareJobQueue(ex, sched, opt).run(jobs).makespan_s;

  const auto drive = [&](const fault::FaultPlan& plan,
                         runtime::Journal* journal,
                         runtime::Journal* resume) {
    runtime::QueueEventLoop loop(ex, sched, opt, jobs);
    obs::Timeline timeline;
    loop.set_timeline(&timeline);
    std::optional<fault::FaultInjector> injector;
    if (!plan.empty()) {
      injector.emplace(plan, ex.spec().nodes);
      loop.set_fault_injector(&*injector);
    }
    if (journal != nullptr) loop.set_journal(journal);
    RunResult out;
    out.report = resume != nullptr ? loop.recover(*resume) : loop.run();
    out.fp = fingerprint(out.report, timeline);
    return out;
  };

  Table t({"scenario", "faults", "records", "snapshots", "kills",
           "recovered", "failures", "completed", "makespan (s)"});
  t.set_title("Crash consistency at a " + format_double(budget, 0) +
              " W bound: kill + recover per scenario");

  std::vector<std::string> json_rows;
  int total_kills = 0;
  int total_failures = 0;
  for (const auto& s : bench::make_recovery_scenarios(horizon)) {
    // Dense snapshots here (the overhead sweep below keeps the default
    // cadence): the kill sweep must exercise mid-run restore + replay, not
    // just the restart path.
    runtime::Journal reference(runtime::JournalOptions{.snapshot_every = 8});
    const RunResult ref = drive(s.plan, &reference, nullptr);

    // Start, quartiles and end of the journal: the no-snapshot restart
    // path, mid-run snapshot restores and the nothing-to-replay case.
    std::vector<std::size_t> kills = {0, reference.size() / 4,
                                      reference.size() / 2,
                                      3 * reference.size() / 4,
                                      reference.size()};
    kills.erase(std::unique(kills.begin(), kills.end()), kills.end());

    int failures = 0;
    for (const std::size_t kill : kills) {
      runtime::Journal j = reference;
      j.truncate(kill);
      const RunResult rec = drive(s.plan, nullptr, &j);
      failures += rec.fp == ref.fp ? 0 : 1;
    }
    total_kills += static_cast<int>(kills.size());
    total_failures += failures;

    std::size_t snapshots = 0;
    for (const auto& r : reference.records())
      snapshots += r.kind == "snapshot" ? 1 : 0;
    t.add_row({s.name, std::to_string(s.plan.size()),
               std::to_string(reference.size()), std::to_string(snapshots),
               std::to_string(kills.size()),
               std::to_string(kills.size() - static_cast<std::size_t>(failures)),
               std::to_string(failures),
               std::to_string(ref.report.jobs_completed()),
               format_double(ref.report.makespan_s, 1)});

    std::ostringstream row;
    row << "    {\"scenario\": \"" << s.name
        << "\", \"faults\": " << s.plan.size()
        << ", \"records\": " << reference.size()
        << ", \"snapshots\": " << snapshots
        << ", \"kill_points\": " << kills.size()
        << ", \"failures\": " << failures
        << ", \"completed\": " << ref.report.jobs_completed()
        << ", \"makespan_s\": " << format_double(ref.report.makespan_s, 3)
        << "}";
    json_rows.push_back(row.str());
  }
  ctx.print(t);

  // Journal overhead on the ext_queue_throughput workload, journal-off vs
  // journal-on. Each sweep repeats what that bench binary does per process —
  // a fresh scheduler characterizes the suite, then serial + FCFS + backfill
  // runs at five budgets — so the journal is priced against the whole
  // coordinator duty cycle, not just the inner event loop.
  const auto sweep = [&](bool journaled) {
    core::ClipScheduler fresh(ex, workloads::training_benchmarks());
    for (const double b : {500.0, 600.0, 800.0, 1000.0, 1300.0}) {
      (void)runtime::run_serially(ex, fresh, Watts(b), apps);
      runtime::QueueOptions qo;
      qo.cluster_budget = Watts(b);
      for (const bool backfill : {false, true}) {
        qo.backfill = backfill;
        runtime::PowerAwareJobQueue queue(ex, fresh, qo);
        runtime::Journal journal;
        if (journaled) queue.set_journal(&journal);
        (void)queue.run(jobs);
      }
    }
  };
  const auto cpu_ms = [] {
    // Process CPU time, not steady_clock: on a shared box, co-tenant
    // preemption adds multi-millisecond bursts to wall-clock that dwarf the
    // journal itself; CPU time is the same duration minus time stolen from
    // this process, which is exactly the denominator the overhead bound
    // means. The bench is single-threaded, so the two agree when idle.
    timespec ts;
    // clip-lint: allow(D1) prices the journal in real elapsed ms; a simulated clock has nothing to say here
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) * 1e3 +
           static_cast<double>(ts.tv_nsec) / 1e6;
  };
  // One sweep is single-digit milliseconds, so a stray scheduler preemption
  // dwarfs the journal cost, and on a shared box the baseline itself drifts
  // by more than the journal costs. Robust estimator: time adjacent
  // off/on batch pairs (drift cancels within a pair because the sides run
  // back to back), alternating which side goes first (the second batch of a
  // pair runs measurably slower, so a fixed order would bias the ratio) and
  // take the median of the per-pair overhead ratios (a preempted pair is an
  // outlier the median ignores).
  constexpr int kSweepsPerSample = 5;
  constexpr int kPairs = 16;
  constexpr int kMaxRounds = 4;
  const auto time_one = [&](bool journaled) {
    const double t0 = cpu_ms();
    for (int i = 0; i < kSweepsPerSample; ++i) sweep(journaled);
    return (cpu_ms() - t0) / kSweepsPerSample;
  };
  sweep(false);  // warm the executor's caches before timing either side
  sweep(true);
  double off_ms = 0.0;
  double on_ms = 0.0;
  std::vector<double> ratios;
  const auto median_pct = [](std::vector<double> v) {
    if (v.empty()) return 0.0;
    std::sort(v.begin(), v.end());
    const double m = v.size() % 2 == 1
                         ? v[v.size() / 2]
                         : 0.5 * (v[v.size() / 2 - 1] + v[v.size() / 2]);
    return (m - 1.0) * 100.0;
  };
  // Escalate sampling while the estimate sits near the gate's 5% bound: a
  // healthy ~2% journal stops after one round, a borderline reading earns
  // three more rounds of pairs so one noisy window cannot fail the gate. A
  // real regression (well above the bound) keeps every round and still
  // reads high.
  for (int round = 0; round < kMaxRounds; ++round) {
    for (int rep = 0; rep < kPairs; ++rep) {
      const bool off_first = (rep + round * kPairs) % 2 == 0;
      const double first = time_one(!off_first);
      const double second = time_one(off_first);
      const double off = off_first ? first : second;
      const double on = off_first ? second : first;
      off_ms = ratios.empty() ? off : std::min(off_ms, off);
      on_ms = ratios.empty() ? on : std::min(on_ms, on);
      if (off > 0.0) ratios.push_back(on / off);
    }
    if (median_pct(ratios) <= 4.0) break;
  }
  const double overhead_pct = std::max(0.0, median_pct(ratios));

  std::cout << "Every kill point recovers byte-identically ("
            << total_kills - total_failures << "/" << total_kills
            << " across the catalog): restore the latest snapshot, replay "
               "the suffix, resume. Journaling the ext_queue_throughput "
               "sweep costs "
            << format_double(off_ms, 0) << " -> " << format_double(on_ms, 0)
            << " ms (" << format_double(overhead_pct, 1) << "% overhead).\n";

  if (json) {
    std::ofstream os("BENCH_recovery.json");
    os << "{\n  \"budget_w\": " << format_double(budget, 0)
       << ",\n  \"jobs\": " << jobs.size()
       << ",\n  \"kill_points\": " << total_kills
       << ",\n  \"recovery_failures\": " << total_failures
       << ",\n  \"journal_off_ms\": " << format_double(off_ms, 0)
       << ",\n  \"journal_on_ms\": " << format_double(on_ms, 0)
       << ",\n  \"overhead_pct\": "
       << static_cast<int>(overhead_pct) << ",\n  \"scenarios\": [\n";
    for (std::size_t i = 0; i < json_rows.size(); ++i)
      os << json_rows[i] << (i + 1 < json_rows.size() ? ",\n" : "\n");
    os << "  ]\n}\n";
    std::cerr << "wrote BENCH_recovery.json\n";
  }
  return total_failures == 0 ? 0 : 1;
}
