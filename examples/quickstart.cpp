// Quickstart — the five-minute tour of the CLIP public API:
//   1. build the simulated power-bounded cluster (the testbed substitute),
//   2. construct a ClipScheduler (this trains the inflection MLR once),
//   3. schedule an application under a cluster power budget,
//   4. inspect the decision, and execute it,
//   5. compare against the naive All-In configuration.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <iostream>

#include "baselines/all_in.hpp"
#include "core/scheduler.hpp"
#include "sim/executor.hpp"
#include "workloads/catalog.hpp"

using namespace clip;
using namespace clip::literals;

int main() {
  // 1. The cluster: 8 nodes x 2 sockets x 12 Haswell-like cores with
  //    RAPL-style PKG/DRAM capping and per-core DVFS.
  sim::SimExecutor cluster{sim::MachineSpec{}};
  std::cout << "Cluster: " << cluster.spec().nodes << " nodes, "
            << cluster.spec().shape.total_cores()
            << " cores/node, peak draw " << cluster.spec().max_cluster_w()
            << " W\n\n";

  // 2. The scheduler. Training profiles the NPB/HPCC/STREAM/PolyBench suite
  //    once to fit the inflection-point model (a one-time system setup).
  core::ClipScheduler clip(cluster, workloads::training_benchmarks());

  // 3. A job: the NPB SP-MZ solver under a 900 W cluster budget.
  const auto app = *workloads::find_benchmark("SP-MZ", "C");
  const Watts budget = 900.0_W;
  const core::ScheduleDecision decision = clip.schedule(app, budget);

  // 4. What CLIP decided, and why.
  std::cout << "CLIP decision for " << app.name << " under "
            << budget.value() << " W:\n  " << decision.describe() << "\n";
  const sim::Measurement run = cluster.run(app, decision.cluster);
  std::cout << "  -> executed in " << run.time.value() << " s at "
            << run.avg_power.value() << " W ("
            << run.energy.value() / 1000.0 << " kJ)\n\n";

  // 5. The same job the conventional way: every node, every core.
  baselines::AllInScheduler all_in(cluster.spec());
  const sim::Measurement naive =
      cluster.run(app, all_in.plan(app, budget));
  std::cout << "All-In under the same budget: " << naive.time.value()
            << " s at " << naive.avg_power.value() << " W\n";
  std::cout << "CLIP speedup over All-In: "
            << naive.time.value() / run.time.value() << "x\n";

  // Bonus: the second schedule of a known app is free (knowledge DB hit).
  const core::ScheduleDecision cached = clip.schedule(app, 700.0_W);
  std::cout << "\nRescheduling at 700 W used the knowledge DB: "
            << (cached.from_knowledge_db ? "yes" : "no")
            << " (profiling cost " << cached.profiling_cost.value()
            << " s)\n";
  return 0;
}
