// Inter-node power coordination for manufacturing variability
// (paper §III-B2, following Inadomi et al. SC'15).
//
// Under a uniform per-node cap, power-inefficient nodes reach a lower DVFS
// state than efficient ones, and the whole (bulk-synchronous) job runs at
// the slowest node's pace. The coordinator shifts watts from efficient to
// inefficient nodes — keeping the total constant — so every node sustains
// the same frequency. Because the paper's testbed is "quite homogeneous",
// coordination only engages when the observed variability spread exceeds a
// threshold.
#pragma once

#include <vector>

#include "sim/config.hpp"
#include "util/units.hpp"

namespace clip::core {

struct VariabilityOptions {
  double activation_threshold = 0.02;  ///< spread below this: do nothing
};

class VariabilityCoordinator {
 public:
  explicit VariabilityCoordinator(
      VariabilityOptions options = VariabilityOptions{})
      : options_(options) {}

  /// Relative spread of per-node CPU power multipliers: (max-min)/min.
  [[nodiscard]] static double spread(const std::vector<double>& multipliers);

  /// Per-node CPU caps that equalize achievable frequency. Manufacturing
  /// variability scales only the *load* power (cores), not the socket base
  /// draw, so the load headroom (cap - base) is what must be distributed
  /// proportionally to each node's multiplier:
  ///   cap_i = base + (Σ caps - N*base) * η_i / Σsay η.
  /// Total power is preserved. Returns an empty vector (= keep the uniform
  /// cap) below the activation threshold.
  [[nodiscard]] std::vector<Watts> coordinate(
      Watts uniform_cpu_cap, const std::vector<double>& multipliers,
      Watts node_base_power = Watts(0.0)) const;

  /// Apply to a cluster config in place (fills cpu_cap_overrides).
  void apply(sim::ClusterConfig& cfg,
             const std::vector<double>& multipliers,
             Watts node_base_power = Watts(0.0)) const;

 private:
  VariabilityOptions options_;
};

}  // namespace clip::core
