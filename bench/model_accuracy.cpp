// Model accuracy — how good are the §III predictors that replace exhaustive
// search? For every evaluation benchmark: predict execution time across the
// (threads, frequency) grid from the ≤3-sample profile and compare against
// ground truth, reporting per-class MAPE. The paper's claim is not that the
// models are perfect but that they are accurate *where decisions are made*
// (the candidate set of the application's class).
#include <iostream>

#include "bench_common.hpp"
#include "core/classifier.hpp"
#include "core/inflection.hpp"
#include "core/predictor.hpp"
#include "core/profiler.hpp"
#include "util/strings.hpp"

using namespace clip;

int main(int argc, char** argv) {
  const bench::BenchContext ctx(argc, argv);
  sim::SimExecutor ex = bench::make_exact_testbed();
  core::SmartProfiler profiler(ex);
  const core::ScalabilityClassifier classifier;
  core::InflectionPredictor inflection;
  inflection.train(core::build_training_set(
      profiler, classifier, workloads::training_benchmarks()));

  Table t({"benchmark", "class", "thread-sweep MAPE",
           "frequency-sweep MAPE", "candidate-set MAPE"});
  t.set_title(
      "Performance-model accuracy: predicted vs simulated time "
      "(profiles use 3 samples; errors over the full grid vs over the "
      "class's decision candidates)");

  double worst_candidate_mape = 0.0;
  for (const auto& w : workloads::paper_benchmarks()) {
    core::ProfileData p = profiler.profile(w);
    const auto cls = classifier.classify(p);
    int np = 0;
    if (cls != workloads::ScalabilityClass::kLinear) {
      np = inflection.predict(p, cls, 24);
      profiler.validate_at(w, p, np);
    }
    const core::PerfPredictor pred(ex.spec(), p, cls, np);
    const core::NodeConfigSelector selector(ex.spec());

    auto actual_time = [&](int threads, Watts cap) {
      sim::ClusterConfig cfg;
      cfg.nodes = 1;
      cfg.node.threads = threads;
      cfg.node.affinity = p.preferred_affinity;
      cfg.node.cpu_cap = cap;
      return ex.run_exact(w, cfg).time.value();
    };

    // Thread sweep at full power.
    double sweep_err = 0.0;
    int sweep_n = 0;
    for (int threads = 2; threads <= 24; threads += 2) {
      const double a = actual_time(threads, Watts(1e9));
      const double e = pred.predict_time(threads).value();
      sweep_err += std::fabs(e - a) / a;
      ++sweep_n;
    }

    // Frequency sweep at the profiled concurrency (24), via caps.
    double freq_err = 0.0;
    int freq_n = 0;
    for (double cap : {70.0, 90.0, 110.0, 130.0}) {
      const double a = actual_time(24, Watts(cap));
      // Find the frequency that cap buys (from the measurement itself).
      sim::ClusterConfig cfg;
      cfg.nodes = 1;
      cfg.node.threads = 24;
      cfg.node.affinity = p.preferred_affinity;
      cfg.node.cpu_cap = Watts(cap);
      const auto m = ex.run_exact(w, cfg);
      const double f_rel =
          m.nodes[0].frequency.value() / ex.spec().ladder.nominal().value();
      const double e =
          pred.predict_time(24, f_rel).value() / m.nodes[0].duty_factor;
      freq_err += std::fabs(e - a) / a;
      ++freq_n;
    }

    // Candidate-set error: only the thread counts this class would pick.
    double cand_err = 0.0;
    int cand_n = 0;
    for (int threads : selector.candidate_threads(cls, np > 0 ? np : 24)) {
      const double a = actual_time(threads, Watts(1e9));
      const double e = pred.predict_time(threads).value();
      cand_err += std::fabs(e - a) / a;
      ++cand_n;
    }
    worst_candidate_mape =
        std::max(worst_candidate_mape, cand_err / cand_n);

    t.add_row({w.name + " (" + w.parameters + ")",
               workloads::to_string(cls),
               format_percent(sweep_err / sweep_n),
               format_percent(freq_err / freq_n),
               format_percent(cand_err / cand_n)});
  }
  ctx.print(t);
  std::cout << "Worst candidate-set MAPE: "
            << format_percent(worst_candidate_mape)
            << ". Linear apps are predicted exactly (two samples pin the "
               "hyperbola); logarithmic apps sit in the 5-8% band; "
               "parabolic apps err most at very low thread counts far "
               "from the profile anchors — where only the *ordering* of "
               "candidates matters for the decision, and the class's "
               "near-peak flatness keeps the chosen config within a few "
               "percent of optimal (see fig8/fig9 CLIP-vs-Oracle).\n";
  return 0;
}
