#include "core/cluster_alloc.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace clip::core {

std::vector<int> ClusterAllocator::power_of_two_counts() const {
  std::vector<int> counts;
  for (int n = 1; n <= spec_->nodes; n *= 2) counts.push_back(n);
  return counts;
}

ClusterDecision ClusterAllocator::allocate(
    const ProfileData& profile, workloads::ScalabilityClass cls, int np,
    Watts cluster_budget, const std::vector<int>& predefined_counts) const {
  CLIP_REQUIRE(cluster_budget.value() > 0.0,
               "cluster budget must be positive");

  // Budget-free recommendation: the configuration the application would run
  // at given ample power; its acceptable range anchors the allocation.
  const NodeDecision unbounded =
      selector_->select(profile, cls, np, Watts(spec_->max_node_w()));
  const PowerEstimator power(*spec_, profile);
  const PowerRange range = power.acceptable_range(
      unbounded.config.threads, unbounded.config.affinity,
      unbounded.config.mem_level);
  CLIP_ENSURE(range.low.value() > 0.0 && range.high >= range.low,
              "degenerate power range");

  std::vector<int> candidates = predefined_counts;
  if (candidates.empty())
    for (int n = 1; n <= spec_->nodes; ++n) candidates.push_back(n);
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(
      std::remove_if(candidates.begin(), candidates.end(),
                     [&](int n) { return n < 1 || n > spec_->nodes; }),
      candidates.end());
  CLIP_REQUIRE(!candidates.empty(), "no feasible node counts");

  if (options_.strict_algorithm1)
    return allocate_strict(profile, cls, np, cluster_budget,
                           predefined_counts, range);
  return allocate_scored(profile, cls, np, cluster_budget, candidates,
                         range);
}

ClusterDecision ClusterAllocator::allocate_scored(
    const ProfileData& profile, workloads::ScalabilityClass cls, int np,
    Watts cluster_budget, const std::vector<int>& candidates,
    const PowerRange& range) const {
  ClusterDecision best;
  double best_score = std::numeric_limits<double>::infinity();
  for (int nodes : candidates) {
    const double node_share = cluster_budget.value() / nodes;
    // The full share goes to the node; RAPL enforcement only draws what the
    // chosen operating point needs, so watts above the acceptable range's
    // top are naturally left unused (the predicted time flattens there,
    // which is what steers the node-count choice).
    const Watts usable(node_share);
    if (usable.value() <= spec_->shape.sockets *
                              (spec_->socket_parked_w +
                               spec_->mem_parked_w_per_socket) +
                              2.0)
      continue;  // not even enough for an idle node

    NodeDecision node;
    try {
      obs::ScopedSpan span(obs_, "pipeline.node_select", "pipeline");
      span.arg("nodes", nodes);
      span.arg("node_share_w", node_share);
      node = selector_->select(profile, cls, np, usable);
      span.arg("threads", node.config.threads);
    } catch (const PreconditionError&) {
      continue;  // no feasible node config under this share
    }
    // Strong scaling: per-node time divides by the node count. (The
    // communication term is unknown to the model — a deliberate source of
    // model error, as on the real system.)
    const double score = node.predicted_time.value() / nodes;
    if (score < best_score) {
      best_score = score;
      best.nodes = nodes;
      best.node_budget = Watts(node_share);
      best.node = node;
      best.predicted_score = score;
    }
  }
  CLIP_REQUIRE(std::isfinite(best_score),
               "no feasible cluster allocation under this budget");
  best.node_range = range;
  return best;
}

ClusterDecision ClusterAllocator::allocate_strict(
    const ProfileData& profile, workloads::ScalabilityClass cls, int np,
    Watts cluster_budget, const std::vector<int>& predefined_counts,
    const PowerRange& range) const {
  const double p_lo = range.low.value();
  const double p_hi = range.high.value();

  int nodes;
  if (!predefined_counts.empty()) {
    std::vector<int> counts = predefined_counts;
    std::sort(counts.begin(), counts.end());
    const double affordable = cluster_budget.value() / p_lo;
    nodes = counts.front();
    for (int c : counts)
      if (c <= spec_->nodes && static_cast<double>(c) <= affordable)
        nodes = c;
    nodes = std::min(nodes, spec_->nodes);
  } else {
    if (cluster_budget.value() > spec_->nodes * p_hi) {
      nodes = spec_->nodes;
    } else {
      nodes =
          static_cast<int>(std::floor(cluster_budget.value() / p_hi));
      nodes = std::clamp(nodes, 1, spec_->nodes);
    }
  }

  ClusterDecision d;
  d.nodes = nodes;
  d.node_budget = Watts(cluster_budget.value() / nodes);
  d.node_range = range;
  const Watts usable(std::min(d.node_budget.value(), p_hi));
  obs::ScopedSpan span(obs_, "pipeline.node_select", "pipeline");
  span.arg("nodes", nodes);
  d.node = selector_->select(profile, cls, np, usable);
  d.predicted_score = d.node.predicted_time.value() / nodes;
  return d;
}

}  // namespace clip::core
