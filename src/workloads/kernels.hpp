// Real runnable computational kernels.
//
// The cluster-scale evaluation runs on the analytic simulator, but the
// *mechanisms* CLIP controls — thread concurrency and affinity — are also
// exercised for real: these kernels are miniature analogues of the paper's
// benchmarks (STREAM triad ≈ STREAM, blocked DGEMM ≈ HPL/compute class,
// Jacobi stencil ≈ TeaLeaf, Lennard-Jones ≈ miniMD/CoMD, Monte-Carlo ≈ EP,
// SpMV ≈ AMG/CG) running on the clip::parallel thread pool. Each returns a
// checksum so tests can verify that throttling/affinity never change
// results.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace clip::workloads {

struct KernelResult {
  double seconds = 0.0;       ///< wall time of the timed section
  double checksum = 0.0;      ///< result digest for correctness checks
  double bytes_moved = 0.0;   ///< modeled memory traffic
  double flops = 0.0;         ///< modeled floating point operations
};

/// STREAM triad: a[i] = b[i] + alpha * c[i], `iters` sweeps over n elements.
[[nodiscard]] KernelResult stream_triad(parallel::ThreadPool& pool,
                                        std::size_t n, int iters);

/// Blocked DGEMM C += A*B with square matrices of order n.
[[nodiscard]] KernelResult blocked_dgemm(parallel::ThreadPool& pool,
                                         std::size_t n);

/// 5-point Jacobi heat relaxation on an n x n grid (TeaLeaf analogue).
[[nodiscard]] KernelResult jacobi_stencil(parallel::ThreadPool& pool,
                                          std::size_t n, int iters);

/// Cut-off Lennard-Jones force evaluation on a cubic lattice of n^3 atoms
/// using cell lists (miniMD/CoMD analogue).
[[nodiscard]] KernelResult lennard_jones(parallel::ThreadPool& pool,
                                         std::size_t n, int steps);

/// Monte-Carlo pi estimation with `samples` draws (EP analogue).
[[nodiscard]] KernelResult monte_carlo_pi(parallel::ThreadPool& pool,
                                          std::uint64_t samples);

/// SpMV y = A x on a synthetic 5-diagonal sparse matrix of order n
/// (AMG/CG analogue), `iters` products.
[[nodiscard]] KernelResult spmv(parallel::ThreadPool& pool, std::size_t n,
                                int iters);

/// Iterative radix-2 complex FFT over `batches` independent signals of
/// length n (power of two) — HPCC-FFT analogue; parallel over batches.
[[nodiscard]] KernelResult batched_fft(parallel::ThreadPool& pool,
                                       std::size_t n, int batches);

/// Histogram of `samples` pseudo-random values into `bins` buckets using
/// worker-private partial histograms merged at the end (IS / integer-sort
/// analogue: bandwidth-light, scatter-heavy).
[[nodiscard]] KernelResult histogram(parallel::ThreadPool& pool,
                                     std::uint64_t samples,
                                     std::size_t bins);

/// Kernel registry entry for the demo driver.
struct KernelInfo {
  std::string name;
  std::string models;  ///< which paper benchmark it stands in for
};
[[nodiscard]] const std::vector<KernelInfo>& kernel_registry();

/// Run a registry kernel by name with a small default problem size.
[[nodiscard]] KernelResult run_kernel_by_name(parallel::ThreadPool& pool,
                                              const std::string& name);

}  // namespace clip::workloads
