#include "core/power_range.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace clip::core {

PowerEstimator::PowerEstimator(const sim::MachineSpec& spec,
                               const ProfileData& profile)
    : spec_(&spec) {
  const int all = spec.shape.total_cores();
  // The all-core profile ran with every socket populated; subtract the
  // known socket base powers to isolate the per-core load power.
  const double base_w = spec.shape.sockets * spec.socket_base_w;
  const double load_w =
      std::max(0.0, profile.all_core.cpu_power.value() - base_w);
  per_core_load_w_ = load_w / all;
  CLIP_REQUIRE(per_core_load_w_ >= 0.0, "negative per-core load power");
  per_core_bw_gbps_ = profile.per_core_bw_gbps;
  placements_.reserve(static_cast<std::size_t>(all) * 2);
  for (int threads = 1; threads <= all; ++threads) {
    placements_.push_back(parallel::place_threads(
        spec.shape, threads, parallel::AffinityPolicy::kCompact));
    placements_.push_back(parallel::place_threads(
        spec.shape, threads, parallel::AffinityPolicy::kScatter));
  }
}

const parallel::Placement& PowerEstimator::placement(
    int threads, parallel::AffinityPolicy affinity) const {
  CLIP_REQUIRE(threads >= 1 && threads <= spec_->shape.total_cores(),
               "threads outside the node");
  const std::size_t i =
      static_cast<std::size_t>(threads - 1) * 2 +
      (affinity == parallel::AffinityPolicy::kCompact ? 0 : 1);
  return placements_[i];
}

double PowerEstimator::bw_demand_gbps(int threads) const {
  return per_core_bw_gbps_ * threads;
}

Watts PowerEstimator::cpu_power(int threads,
                                parallel::AffinityPolicy affinity,
                                double f_rel) const {
  CLIP_REQUIRE(threads >= 1 && threads <= spec_->shape.total_cores(),
               "threads outside the node");
  CLIP_REQUIRE(f_rel > 0.0 && f_rel <= 1.5, "f_rel out of range");
  double total = 0.0;
  for (int t : placement(threads, affinity).threads_per_socket)
    total += t > 0 ? spec_->socket_base_w : spec_->socket_parked_w;
  total += threads * per_core_load_w_ *
           std::pow(f_rel, spec_->power_exponent);
  return Watts(total);
}

Watts PowerEstimator::mem_power(int threads,
                                parallel::AffinityPolicy affinity,
                                sim::MemPowerLevel level) const {
  const double level_bw = placement(threads, affinity).active_sockets() *
                          spec_->socket_bw_gbps * sim::bw_fraction(level);
  return mem_power_at_bw(threads, affinity,
                         std::min(bw_demand_gbps(threads), level_bw));
}

Watts PowerEstimator::mem_power_at_bw(int threads,
                                      parallel::AffinityPolicy affinity,
                                      double achieved_bw_gbps) const {
  CLIP_REQUIRE(achieved_bw_gbps >= 0.0, "achieved bandwidth must be >= 0");
  const int active = placement(threads, affinity).active_sockets();
  const int parked = spec_->shape.sockets - active;
  return Watts(active * spec_->mem_base_w_per_socket +
               parked * spec_->mem_parked_w_per_socket +
               achieved_bw_gbps * spec_->mem_w_per_gbps());
}

Watts PowerEstimator::node_power(int threads,
                                 parallel::AffinityPolicy affinity,
                                 sim::MemPowerLevel level,
                                 double f_rel) const {
  return cpu_power(threads, affinity, f_rel) +
         mem_power(threads, affinity, level);
}

PowerRange PowerEstimator::acceptable_range(
    int threads, parallel::AffinityPolicy affinity,
    sim::MemPowerLevel level) const {
  const double f_hi = 1.0;
  const double f_lo = spec_->ladder.min() / spec_->ladder.nominal();
  PowerRange range;
  range.high = node_power(threads, affinity, level, f_hi);
  range.low = node_power(threads, affinity, level, f_lo);
  CLIP_ENSURE(range.low <= range.high, "inverted power range");
  return range;
}

}  // namespace clip::core
