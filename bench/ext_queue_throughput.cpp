// Extension — power-aware job queue: operating the cluster on the whole
// Table II suite as a job stream under one budget. Compares serial
// execution (one job at a time with the full budget — the conventional
// power-bounded site) against CLIP-shaped co-scheduling where concurrent
// jobs share nodes and watts (cf. POWsched's power shifting between
// applications).
#include <iostream>

#include "bench_common.hpp"
#include "core/scheduler.hpp"
#include "runtime/queue.hpp"
#include "util/strings.hpp"

using namespace clip;

int main(int argc, char** argv) {
  const bench::BenchContext ctx(argc, argv);
  sim::SimExecutor ex = bench::make_testbed();
  core::ClipScheduler sched(ex, workloads::training_benchmarks());
  const auto jobs = workloads::paper_benchmarks();

  Table t({"budget (W)", "policy", "makespan (s)", "mean turnaround (s)",
           "node utilization", "energy (kJ)", "speedup vs serial"});
  t.set_title("Job-stream throughput: the Table II suite as a queue");

  for (double budget : {500.0, 600.0, 800.0, 1000.0, 1300.0}) {
    const auto serial =
        runtime::run_serially(ex, sched, Watts(budget), jobs);
    runtime::QueueOptions opt;
    opt.cluster_budget = Watts(budget);
    opt.backfill = false;
    const auto fcfs =
        runtime::PowerAwareJobQueue(ex, sched, opt).run(jobs);
    opt.backfill = true;
    const auto backfill =
        runtime::PowerAwareJobQueue(ex, sched, opt).run(jobs);

    auto add = [&](const char* name, const runtime::QueueReport& r) {
      t.add_row({format_double(budget, 0), name,
                 format_double(r.makespan_s, 1),
                 format_double(r.mean_turnaround_s, 1),
                 format_double(r.node_utilization(), 2),
                 format_double(r.total_energy_j / 1000.0, 1),
                 format_double(serial.makespan_s / r.makespan_s, 2) + "x"});
    };
    add("serial (full budget per job)", serial);
    add("co-scheduled FCFS", fcfs);
    add("co-scheduled + backfill", backfill);
  }
  ctx.print(t);
  std::cout
      << "At tight budgets CLIP shrinks each job to few nodes, leaving "
         "nodes and watts idle under serial operation — co-scheduling "
         "converts that slack into throughput. At generous budgets single "
         "jobs already fill the cluster and the policies converge.\n";
  return 0;
}
