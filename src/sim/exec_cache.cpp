#include "sim/exec_cache.hpp"

#include <algorithm>
#include <cstring>

#include "util/check.hpp"

namespace clip::sim {

namespace {

/// splitmix64 finalizer — full-avalanche mixing for the 24-byte POD key.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t bits_of(double v) {
  std::uint64_t out;
  std::memcpy(&out, &v, sizeof(out));
  return out;
}

}  // namespace

std::size_t ExactRunCache::KeyHash::operator()(const CacheKey& k) const {
  std::uint64_t h = mix64(k.prefix);
  h = mix64(h ^ bits_of(k.cpu_cap_w));
  h = mix64(h ^ bits_of(k.mem_cap_w));
  return static_cast<std::size_t>(h);
}

std::size_t ExactRunCache::FrontierKeyHash::operator()(
    const FrontierKey& k) const {
  std::uint64_t h = mix64(k.prefix);
  for (const CapPoint& p : k.caps) {
    h = mix64(h ^ bits_of(p.cpu_cap.value()));
    h = mix64(h ^ bits_of(p.mem_cap.value()));
  }
  return static_cast<std::size_t>(h);
}

ExactRunCache::ExactRunCache(ExactCacheOptions options) {
  const int shards = std::max(1, options.shards);
  frontier_cap_ = std::max<std::size_t>(options.max_frontier_entries, 1);
  const std::size_t max_entries = std::max<std::size_t>(
      options.max_entries, static_cast<std::size_t>(shards));
  per_shard_cap_ =
      (max_entries + static_cast<std::size_t>(shards) - 1) /
      static_cast<std::size_t>(shards);
  shards_ = std::vector<Shard>(static_cast<std::size_t>(shards));
  // Pre-size the buckets (bounded at 64 Ki per shard) so the hot insert
  // path never pays an incremental rehash walk.
  for (Shard& shard : shards_)
    shard.map.reserve(std::min<std::size_t>(per_shard_cap_, 1u << 16));
}

std::uint64_t ExactRunCache::intern_prefix(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(intern_mu_);
  // Ids start at 1 so a default CacheKey{} can never alias a real entry.
  const auto [it, inserted] =
      intern_.try_emplace(prefix, static_cast<std::uint64_t>(intern_.size()) + 1);
  return it->second;
}

ExactRunCache::Shard& ExactRunCache::shard_for(const CacheKey& key) const {
  return shards_[KeyHash{}(key) % shards_.size()];
}

bool ExactRunCache::lookup(const CacheKey& key, Measurement& out) const {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  out = it->second;
  return true;
}

void ExactRunCache::insert(const CacheKey& key, const Measurement& m) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto [it, inserted] = shard.map.try_emplace(key, m);
  if (!inserted) return;  // a concurrent miss already filled it — identical
  shard.fifo.push_back(key);
  if (shard.fifo.size() > per_shard_cap_) {
    shard.map.erase(shard.fifo.front());
    shard.fifo.pop_front();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

FrontierResult ExactRunCache::lookup_frontier(
    const FrontierKey& key) const {
  std::lock_guard<std::mutex> lock(frontier_mu_);
  const auto it = frontiers_.find(key);
  if (it == frontiers_.end()) {
    misses_.fetch_add(key.caps.size(), std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(key.caps.size(), std::memory_order_relaxed);
  return it->second;
}

void ExactRunCache::insert_frontier(FrontierKey key, FrontierResult result) {
  std::lock_guard<std::mutex> lock(frontier_mu_);
  const auto [it, inserted] =
      frontiers_.try_emplace(std::move(key), std::move(result));
  if (!inserted) return;  // a concurrent miss already filled it — identical
  frontier_fifo_.push_back(it->first);
  if (frontier_fifo_.size() > frontier_cap_) {
    frontiers_.erase(frontier_fifo_.front());
    frontier_fifo_.pop_front();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

ExactCacheStats ExactRunCache::stats() const {
  ExactCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    s.entries += shard.map.size();
  }
  {
    std::lock_guard<std::mutex> lock(frontier_mu_);
    s.frontier_entries = frontiers_.size();
  }
  return s;
}

void ExactRunCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
    shard.fifo.clear();
  }
  std::lock_guard<std::mutex> lock(frontier_mu_);
  frontiers_.clear();
  frontier_fifo_.clear();
}

void ExactRunCache::encode(std::string& out, double v) {
  char bytes[sizeof(double)];
  std::memcpy(bytes, &v, sizeof(double));
  out.append(bytes, sizeof(double));
}

void ExactRunCache::encode(std::string& out, std::uint64_t v) {
  char bytes[sizeof(std::uint64_t)];
  std::memcpy(bytes, &v, sizeof(std::uint64_t));
  out.append(bytes, sizeof(std::uint64_t));
}

void ExactRunCache::encode(std::string& out, int v) {
  encode(out, static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
}

void ExactRunCache::encode(std::string& out, const std::string& s) {
  encode(out, static_cast<std::uint64_t>(s.size()));
  out.append(s);
}

std::string ExactRunCache::encode_spec(const MachineSpec& spec) {
  std::string out;
  out.reserve(256);
  // spec.nodes is intentionally absent — see the header: topologically
  // identical shards of different sizes share entries, because the
  // sequential variability draw makes the first cfg.nodes multipliers
  // independent of the cluster size.
  encode(out, spec.shape.sockets);
  encode(out, spec.shape.cores_per_socket);
  encode(out, static_cast<std::uint64_t>(spec.ladder.state_count()));
  for (const GHz f : spec.ladder.states()) encode(out, f.value());
  encode(out, spec.ladder.nominal().value());
  encode(out, spec.socket_base_w);
  encode(out, spec.socket_parked_w);
  encode(out, spec.core_max_w);
  encode(out, spec.core_power_floor);
  encode(out, spec.power_exponent);
  encode(out, spec.socket_bw_gbps);
  encode(out, spec.mem_base_w_per_socket);
  encode(out, spec.mem_parked_w_per_socket);
  encode(out, spec.mem_activity_w_per_socket);
  encode(out, spec.remote_numa_penalty);
  encode(out, spec.variability_sigma);
  encode(out, spec.variability_seed);
  return out;
}

std::string ExactRunCache::encode_key(const std::string& prefix,
                                      const workloads::WorkloadSignature& w,
                                      const ClusterConfig& cfg) {
  std::string key = encode_batch_prefix(prefix, w, cfg);
  append_caps(key, cfg.node.cpu_cap, cfg.node.mem_cap, cfg.cpu_cap_overrides);
  return key;
}

std::string ExactRunCache::encode_batch_prefix(
    const std::string& prefix, const workloads::WorkloadSignature& w,
    const ClusterConfig& cfg) {
  std::string key;
  key.reserve(prefix.size() + 256 + w.name.size() + w.parameters.size());
  key.append(prefix);

  // Workload signature: every generative parameter the model reads. The
  // name/parameters strings ride along for human traceability and to keep
  // distinct catalog entries with coincidentally equal parameters apart.
  encode(key, w.name);
  encode(key, w.parameters);
  encode(key, static_cast<int>(w.pattern));
  encode(key, w.node_base_time_s);
  encode(key, w.serial_fraction);
  encode(key, w.memory_boundedness);
  encode(key, w.bw_per_core_gbps);
  encode(key, w.fork_overhead_s);
  encode(key, w.sync_coeff_s);
  encode(key, w.sync_exponent);
  encode(key, w.shared_data_fraction);
  encode(key, w.compute_intensity);
  encode(key, w.ipc);
  encode(key, w.icache_pressure);
  encode(key, w.write_fraction);
  encode(key, w.comm_latency_s);
  encode(key, w.comm_surface_coeff);
  encode(key, static_cast<int>(w.has_predefined_process_counts));

  // Cluster configuration, minus the caps/overrides suffix (append_caps).
  encode(key, cfg.nodes);
  encode(key, cfg.node.threads);
  encode(key, static_cast<int>(cfg.node.affinity));
  encode(key, static_cast<int>(cfg.node.mem_level));
  return key;
}

void ExactRunCache::append_overrides(
    std::string& key, const std::vector<Watts>& cpu_cap_overrides) {
  encode(key, static_cast<std::uint64_t>(cpu_cap_overrides.size()));
  for (const Watts w_i : cpu_cap_overrides) encode(key, w_i.value());
}

void ExactRunCache::append_caps(std::string& key, Watts cpu_cap, Watts mem_cap,
                                const std::vector<Watts>& cpu_cap_overrides) {
  encode(key, cpu_cap.value());
  encode(key, mem_cap.value());
  append_overrides(key, cpu_cap_overrides);
}

}  // namespace clip::sim
