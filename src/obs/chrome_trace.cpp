#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "util/check.hpp"

namespace clip::obs {

namespace {

/// Fixed-precision non-scientific number rendering (ns resolution on
/// microsecond timestamps). snprintf keeps the output locale-independent.
std::string number(double v) {
  char buf[64];
  // clip-lint: allow(D3) Chrome-trace timestamps are display-side, ns resolution suffices; byte-exact series live in obs::Timeline
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

void append_args(std::ostringstream& os, const std::vector<SpanArg>& args) {
  os << "\"args\":{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) os << ',';
    os << '"' << json_escape(args[i].key) << "\":";
    if (args[i].numeric)
      os << args[i].value;
    else
      os << '"' << json_escape(args[i].value) << '"';
  }
  os << '}';
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string span_to_json(const SpanRecord& span) {
  std::ostringstream os;
  os << "{\"name\":\"" << json_escape(span.name) << "\",\"cat\":\""
     << json_escape(span.category.empty() ? "clip" : span.category)
     << "\",\"ph\":\"X\",\"ts\":" << number(span.start_us)
     << ",\"dur\":" << number(span.duration_us)
     << ",\"pid\":1,\"tid\":" << span.tid << ',';
  append_args(os, span.args);
  os << '}';
  return os.str();
}

std::string counter_to_json(const CounterSample& sample) {
  std::ostringstream os;
  os << "{\"name\":\"" << json_escape(sample.name)
     << "\",\"cat\":\"counter\",\"ph\":\"C\",\"ts\":" << number(sample.time_us)
     << ",\"pid\":1,\"args\":{";
  for (std::size_t i = 0; i < sample.series.size(); ++i) {
    if (i > 0) os << ',';
    os << '"' << json_escape(sample.series[i].first)
       << "\":" << number(sample.series[i].second);
  }
  os << "}}";
  return os.str();
}

std::vector<SpanRecord> group_spans_by_trace(std::vector<SpanRecord> spans) {
  int max_tid = 0;
  for (const auto& s : spans) max_tid = std::max(max_tid, s.tid);
  std::map<std::string, int> tracks;  // trace_id -> first-appearance index
  for (auto& s : spans) {
    const auto it = std::find_if(
        s.args.begin(), s.args.end(),
        [](const SpanArg& a) { return a.key == "trace_id" && !a.numeric; });
    if (it == s.args.end()) continue;
    const auto [slot, inserted] =
        tracks.emplace(it->value, static_cast<int>(tracks.size()));
    (void)inserted;
    s.tid = max_tid + 1 + slot->second;
  }
  return spans;
}

std::string chrome_trace_json(const std::vector<SpanRecord>& spans,
                              const std::vector<CounterSample>& counters) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& s : spans) {
    if (!first) os << ",\n";
    first = false;
    os << span_to_json(s);
  }
  for (const auto& c : counters) {
    if (!first) os << ",\n";
    first = false;
    os << counter_to_json(c);
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
  return os.str();
}

void write_chrome_trace(const std::filesystem::path& path,
                        const std::vector<SpanRecord>& spans,
                        const std::vector<CounterSample>& counters) {
  std::ofstream out(path);
  CLIP_REQUIRE(out.good(), "cannot open trace file: " + path.string());
  out << chrome_trace_json(spans, counters);
}

}  // namespace clip::obs
