// Comparison harness: runs a set of scheduling methods over applications and
// budgets, reporting performance relative to the paper's reference ("we use
// the relative performance based on the All-In method without a power
// bound", §V-C). Shared by the Fig. 8/9 benchmark binaries, the summary
// harness, and the campaign example.
//
// The harness is the outer loop of every §V evaluation bench, so it is built
// to scale with the host (docs/performance.md): planning stays serial in the
// canonical (app → budget → method) order — schedulers are stateful, and the
// noisy profiling runs they issue must consume the meter's RNG stream in the
// historical order for byte-identical output — while the exact per-cell
// timings (pure, noise-free) fan out across an optional thread pool and
// merge by cell index, so the result is identical to the serial run.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/scheduler_iface.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/executor.hpp"
#include "workloads/signature.hpp"

namespace clip::runtime {

/// One (application, budget, method) evaluation.
struct ComparisonCell {
  std::string app;
  std::string parameters;
  double budget_w = 0.0;
  std::string method;
  double time_s = 0.0;
  double relative_performance = 0.0;  ///< vs unbounded All-In
  sim::ClusterConfig plan;
};

struct ComparisonResult {
  std::vector<ComparisonCell> cells;

  /// Mean relative performance of a method across all apps at one budget.
  [[nodiscard]] double mean_relative(const std::string& method,
                                     double budget_w) const;

  /// Mean improvement of `method` over `reference` across apps & budgets.
  /// With `budgets` non-empty, only those budgets enter the mean (useful to
  /// exclude degenerate regimes, e.g. budgets below a method's enforceable
  /// floor where its slowdown is unbounded and would dominate the mean).
  [[nodiscard]] double mean_improvement(
      const std::string& method, const std::string& reference,
      const std::vector<double>& budgets = {}) const;

  /// O(1) lookup via a hash index over (app, parameters, budget, method).
  /// The index is built lazily and rebuilt whenever `cells` has grown or
  /// shrunk since the last lookup; callers that edit key fields of existing
  /// cells in place should call `invalidate_index()` afterwards.
  [[nodiscard]] const ComparisonCell* find(const std::string& app,
                                           const std::string& parameters,
                                           double budget_w,
                                           const std::string& method) const;

  void invalidate_index() const { indexed_cells_ = kNoIndex; }

 private:
  static std::string cell_key(const std::string& app,
                              const std::string& parameters, double budget_w,
                              const std::string& method);
  void ensure_index() const;

  static constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);
  // clip-lint: allow(D2) lookup-only O(1) index over cells; never iterated, so hash order cannot reach output
  mutable std::unordered_map<std::string, std::size_t> index_;
  mutable std::size_t indexed_cells_ = kNoIndex;
};

class ComparisonHarness {
 public:
  explicit ComparisonHarness(sim::SimExecutor& executor)
      : executor_(&executor) {}

  /// Register a method. Ownership shared so harnesses can also keep a
  /// handle (e.g. to query the oracle's search cost).
  void add_method(std::shared_ptr<baselines::PowerScheduler> method);

  /// Evaluate every method on every (app, budget) pair. The reference
  /// performance per app is All-In at an effectively unlimited budget.
  ///
  /// With a pool, the exact timing runs fan out across it; results are
  /// written per cell index, so the returned cells are byte-identical to
  /// the serial run whatever the team size. The pool is borrowed for the
  /// duration of the call (share it with the oracle's `set_pool` — plan()
  /// and the timing phase never overlap).
  [[nodiscard]] ComparisonResult run(
      const std::vector<workloads::WorkloadSignature>& apps,
      const std::vector<double>& budgets_w,
      parallel::ThreadPool* pool = nullptr);

 private:
  [[nodiscard]] double unbounded_reference_time(
      const workloads::WorkloadSignature& app);

  sim::SimExecutor* executor_;
  std::vector<std::shared_ptr<baselines::PowerScheduler>> methods_;
};

}  // namespace clip::runtime
