// Timeline — the cluster flight recorder, keyed by *simulated* seconds.
//
// Spans and metrics (tracer.hpp, metrics.hpp) answer "where did host time
// go"; the Timeline answers "what did the cluster do over simulated time" —
// exactly the per-node power/cap/frequency series the paper's power meter
// reader collects (§IV-B4, Figs. 1/3/7–9). It is an append-only, per-series
// store of (t_s, value) samples and (t_s, label) events with:
//
//   * bounded ring-buffer mode (keep the newest N points per series; the
//     count of evicted points is reported by dropped());
//   * deterministic CSV / JSONL export (doubles print as shortest-exact
//     %.17g, series in name order, points in time order — two identical
//     runs serialize byte-identically);
//   * alignment and summary queries over the step-function interpretation
//     of a series (value_at, resample, integral, time_above, summary).
//
// Producers attach one via set_timeline(Timeline*) — the same discipline as
// set_observer(): nullptr means "off" and every hook collapses to a single
// pointer test, so a run with no timeline is byte-identical to one before
// this class existed. Within a series, timestamps must be non-decreasing
// (the event loops that feed it are monotone in simulated time); violating
// that is a caller bug and throws.
//
// The series catalog and units live in docs/observability.md.
#pragma once

#include <cstdint>
#include <deque>
#include <filesystem>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include <mutex>

namespace clip {
struct CsvDocument;
}

namespace clip::obs {

struct TimelinePoint {
  double t_s = 0.0;
  double value = 0.0;
};

struct TimelineEvent {
  double t_s = 0.0;
  std::string label;
};

struct TimelineOptions {
  /// Max points kept per sample series (0 = unbounded). When full, the
  /// oldest point is evicted and dropped() is bumped. Event series are
  /// bounded the same way.
  std::size_t ring_capacity = 0;
};

/// min/mean/max over a sample series plus its time extent.
struct SeriesSummary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double first_t_s = 0.0;
  double last_t_s = 0.0;
};

class Timeline {
 public:
  explicit Timeline(TimelineOptions options = TimelineOptions{});

  Timeline(const Timeline&) = delete;
  Timeline& operator=(const Timeline&) = delete;

  /// Append one sample. `t_s` must be >= the series' last timestamp.
  void record(std::string_view series, double t_s, double value);

  /// Append one labeled event. `t_s` must be >= the series' last timestamp.
  void event(std::string_view series, double t_s, std::string_view label);

  /// All series names (samples and events merged), sorted.
  [[nodiscard]] std::vector<std::string> series_names() const;

  /// Snapshot of a sample series in time order (empty if unknown).
  [[nodiscard]] std::vector<TimelinePoint> samples(
      std::string_view series) const;

  /// Snapshot of an event series in time order (empty if unknown).
  [[nodiscard]] std::vector<TimelineEvent> events(
      std::string_view series) const;

  [[nodiscard]] std::size_t total_samples() const;
  /// Points evicted by the ring buffer across all series.
  [[nodiscard]] std::uint64_t dropped() const;

  [[nodiscard]] SeriesSummary summary(std::string_view series) const;

  /// Step-function (sample-and-hold) value at `t_s`: the value of the last
  /// sample at or before `t_s`. NaN when the series is empty or `t_s`
  /// precedes its first sample.
  [[nodiscard]] double value_at(std::string_view series, double t_s) const;

  /// `points` step-function values at evenly spaced instants over
  /// [t0, t1] (both ends included when points > 1).
  [[nodiscard]] std::vector<TimelinePoint> resample(std::string_view series,
                                                    double t0, double t1,
                                                    std::size_t points) const;

  /// ∫ series dt over [t0, t1] under the step-function interpretation
  /// (value·seconds; e.g. a power series integrates to joules). The stretch
  /// before the first sample contributes zero.
  [[nodiscard]] double integral(std::string_view series, double t0,
                                double t1) const;

  /// Seconds within [t0, t1] during which the series exceeds `threshold`
  /// (step-function; e.g. time-above-cap for a power series).
  [[nodiscard]] double time_above(std::string_view series, double threshold,
                                  double t0, double t1) const;

  /// CSV document: header `kind,series,t_s,value,label`; sample rows first,
  /// then event rows, series in name order, points in time order.
  void write_csv(const std::filesystem::path& path) const;

  /// The exact bytes write_csv would produce, as a string — the scheduler
  /// journal embeds a run's timeline in its snapshots this way, so a
  /// recovered run's flight record is byte-identical to the uninterrupted
  /// one.
  [[nodiscard]] std::string to_csv_string() const;

  /// Append the contents of a to_csv_string() export into this timeline.
  /// Throws on malformed input; `context` names the source in errors.
  void load_csv_string(const std::string& text, const std::string& context);

  /// One JSON object per line, same order as the CSV.
  void write_jsonl(const std::filesystem::path& path) const;

  /// Append the contents of a write_csv() file into this timeline. Throws
  /// on malformed input. load then write round-trips byte-identically.
  void load_csv(const std::filesystem::path& path);

  void clear();

 private:
  [[nodiscard]] CsvDocument to_csv_document() const;
  void load_csv_document(const CsvDocument& doc, const std::string& context);

  struct SampleSeries {
    std::deque<TimelinePoint> points;
  };
  struct EventSeries {
    std::deque<TimelineEvent> entries;
  };

  mutable std::mutex mu_;
  TimelineOptions options_;
  std::map<std::string, SampleSeries, std::less<>> samples_;
  std::map<std::string, EventSeries, std::less<>> events_;
  std::uint64_t dropped_ = 0;
};

/// Shortest-exact double formatting (%.17g trimmed): parses back to the
/// same bits, so timeline exports and run reports round-trip exactly.
[[nodiscard]] std::string format_exact(double v);

}  // namespace clip::obs
