#include "obs/metrics.hpp"

// The registry's maps are created here and rendered in prometheus.cpp;
// both translation units label the lock @obs_registry so clip-analyze's
// L2 lock-order graph sees one node across the two files.
// clip-lint: guards(mu_@obs_registry: counters_, gauges_, histograms_)

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace clip::obs {

namespace {

/// CAS add for atomic<double> (fetch_add on floating atomics is C++20 but
/// spelled out here so the memory-order intent is explicit and portable).
void atomic_add(std::atomic<double>& a, double delta) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta,
                                  std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

HistogramSpec HistogramSpec::linear(double lo, double hi, int buckets) {
  CLIP_REQUIRE(buckets >= 1, "need at least one bucket");
  CLIP_REQUIRE(hi > lo, "linear spec needs hi > lo");
  HistogramSpec spec;
  spec.bounds.reserve(static_cast<std::size_t>(buckets));
  const double width = (hi - lo) / buckets;
  for (int i = 1; i <= buckets; ++i) spec.bounds.push_back(lo + width * i);
  return spec;
}

HistogramSpec HistogramSpec::exponential(double lo, double factor,
                                         int buckets) {
  CLIP_REQUIRE(buckets >= 1, "need at least one bucket");
  CLIP_REQUIRE(lo > 0.0 && factor > 1.0,
               "exponential spec needs lo > 0 and factor > 1");
  HistogramSpec spec;
  spec.bounds.reserve(static_cast<std::size_t>(buckets));
  double bound = lo;
  for (int i = 0; i < buckets; ++i) {
    spec.bounds.push_back(bound);
    bound *= factor;
  }
  return spec;
}

void HistogramSpec::validate() const {
  CLIP_REQUIRE(!bounds.empty(), "histogram needs at least one bucket bound");
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    CLIP_REQUIRE(std::isfinite(bounds[i]), "bucket bounds must be finite");
    if (i > 0)
      CLIP_REQUIRE(bounds[i] > bounds[i - 1],
                   "bucket bounds must be strictly ascending");
  }
}

Histogram::Histogram(HistogramSpec spec)
    : spec_(std::move(spec)),
      buckets_(spec_.bounds.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  spec_.validate();
}

void Histogram::record(double v) {
  const auto it =
      std::lower_bound(spec_.bounds.begin(), spec_.bounds.end(), v);
  const std::size_t index =
      static_cast<std::size_t>(it - spec_.bounds.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  atomic_min(min_, v);
  atomic_max(max_, v);
}

std::uint64_t Histogram::count() const {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::quantile(double q) const {
  CLIP_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q outside [0,1]");
  // Snapshot the buckets: concurrent recording may tear the totals, which
  // is acceptable for an observability estimate.
  std::vector<std::uint64_t> counts(buckets_.size());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  const double lo_observed = min_.load(std::memory_order_relaxed);
  const double hi_observed = max_.load(std::memory_order_relaxed);

  const double target = q * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (static_cast<double>(cum + counts[i]) >= target) {
      // Bucket edges: the first populated region starts at the observed
      // minimum; the overflow bucket ends at the observed maximum.
      const double lo = i == 0 ? lo_observed
                               : std::max(spec_.bounds[i - 1], lo_observed);
      const double hi =
          i < spec_.bounds.size() ? std::min(spec_.bounds[i], hi_observed)
                                  : hi_observed;
      const double within =
          counts[i] == 0 ? 0.0
                         : (target - static_cast<double>(cum)) /
                               static_cast<double>(counts[i]);
      const double v = lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
      return std::clamp(v, lo_observed, hi_observed);
    }
    cum += counts[i];
  }
  return hi_observed;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  return counts;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      const HistogramSpec& spec) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(spec))
             .first;
  return *it->second;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::find_histogram(
    std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

Table MetricsRegistry::summary_table() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Table t({"metric", "kind", "count", "value", "p50", "p90", "p99"});
  t.set_title("Metrics summary");
  for (const auto& [name, c] : counters_)
    t.add_row({name, "counter", std::to_string(c->value()), "-", "-", "-",
               "-"});
  for (const auto& [name, g] : gauges_)
    t.add_row({name, "gauge", "-", format_double(g->value(), 3), "-", "-",
               "-"});
  for (const auto& [name, h] : histograms_)
    t.add_row({name, "histogram", std::to_string(h->count()),
               format_double(h->mean(), 3), format_double(h->quantile(0.5), 3),
               format_double(h->quantile(0.9), 3),
               format_double(h->quantile(0.99), 3)});
  return t;
}

}  // namespace clip::obs
