// ClipScheduler — the user-facing facade implementing Algorithm 1.
//
// schedule(app, cluster_budget):
//   1. Look the application up in the knowledge database; profile it with
//      the smart profiler on a miss (classifying, predicting N_P, taking
//      the validation sample, and recording the result).
//   2. Run the cluster allocator to pick the node count and per-node
//      budget, then the node selector for threads/affinity/memory level and
//      the CPU/DRAM split.
//   3. Apply inter-node variability coordination to the per-node CPU caps.
//
// The returned decision carries the full rationale so harnesses and tests
// can inspect every intermediate quantity.
#pragma once

#include <optional>
#include <tuple>
#include <string>
#include <vector>

#include "core/classifier.hpp"
#include "core/cluster_alloc.hpp"
#include "core/inflection.hpp"
#include "core/knowledge_db.hpp"
#include "core/node_config.hpp"
#include "core/profiler.hpp"
#include "core/variability_coord.hpp"
#include "obs/session.hpp"
#include "sim/executor.hpp"
#include "sim/phased.hpp"
#include "workloads/phases.hpp"
#include "workloads/signature.hpp"

namespace clip::core {

/// Everything CLIP decided for one job, with the reasoning attached.
struct ScheduleDecision {
  sim::ClusterConfig cluster;   ///< ready to hand to the executor
  workloads::ScalabilityClass cls = workloads::ScalabilityClass::kLinear;
  int inflection = 0;
  Watts node_budget{0.0};
  PowerRange node_range;
  Seconds predicted_node_time{0.0};
  bool from_knowledge_db = false;
  Seconds profiling_cost{0.0};

  [[nodiscard]] std::string describe() const;
};

struct SchedulerOptions {
  ProfilerOptions profiler;
  ClassifierThresholds classifier;
  NodeSelectorOptions selector;
  ClusterAllocOptions allocator;
  VariabilityOptions variability;
  InflectionOptions inflection;
  bool take_validation_sample = true;
};

class ClipScheduler {
 public:
  /// The scheduler trains its inflection models on `training_suite` at
  /// construction (one-time system characterization, as the paper trains on
  /// NPB/HPCC/STREAM/PolyBench before evaluating).
  ClipScheduler(sim::SimExecutor& executor,
                const std::vector<workloads::WorkloadSignature>&
                    training_suite,
                SchedulerOptions options = SchedulerOptions{});

  /// Decide node count, per-node budget, threads, affinity, memory level
  /// and CPU/DRAM caps for `app` under `cluster_budget`.
  [[nodiscard]] ScheduleDecision schedule(
      const workloads::WorkloadSignature& app, Watts cluster_budget);

  /// Convenience: schedule then execute, returning the measurement.
  [[nodiscard]] sim::Measurement schedule_and_run(
      const workloads::WorkloadSignature& app, Watts cluster_budget);

  /// Phase-aware scheduling (paper §V-B1: "we change the concurrency
  /// setting phase-by-phase"). The node count comes from the blended
  /// whole-program profile; each phase then gets its own concurrency,
  /// affinity, memory level and CPU/DRAM split under the shared per-node
  /// budget, applied at phase boundaries.
  struct PhasedDecision {
    sim::PhasedClusterConfig cluster;
    Watts node_budget{0.0};
    std::vector<workloads::ScalabilityClass> phase_classes;
    std::vector<int> phase_inflections;
  };
  [[nodiscard]] PhasedDecision schedule_phased(
      const workloads::PhasedWorkload& app, Watts cluster_budget);

  /// Constrained scheduling — the §VII future-work runtime: the job arrives
  /// with a predefined node count (and optionally a fixed thread count, as
  /// MPI+OpenMP launch lines do); CLIP still coordinates everything else
  /// (frequency via the CPU cap, memory power level, affinity, CPU/DRAM
  /// split — and concurrency when `fixed_threads` is 0).
  [[nodiscard]] ScheduleDecision schedule_constrained(
      const workloads::WorkloadSignature& app, Watts cluster_budget,
      int fixed_nodes, int fixed_threads = 0);

  /// Attach an observability session (nullptr detaches), forwarded to the
  /// profiler and allocator. Every schedule() then emits one span per
  /// pipeline stage — pipeline.profile → .classify → .inflect →
  /// .node_select → .allocate → .coordinate — under a "clip.schedule" root,
  /// plus the scheduler.* counters and the `scheduler.plan_us` latency
  /// histogram (taxonomy: docs/observability.md). Detached scheduling costs
  /// one branch per stage; bench/micro_runtime pins that at noise level.
  void set_observer(obs::ObsSession* obs);

  /// Adopt another scheduler's characterization results (same-machine
  /// records only). Apps found in `db` then skip profiling entirely, so a
  /// budget sweep that builds several schedulers — or repeats a harness —
  /// characterizes each application once per process instead of once per
  /// scheduler. Returns the number of records adopted.
  std::size_t seed_knowledge_from(const KnowledgeDb& db) {
    return db_.merge_from(db);
  }

  [[nodiscard]] KnowledgeDb& knowledge_db() { return db_; }
  [[nodiscard]] const InflectionPredictor& inflection_predictor() const {
    return inflection_;
  }
  [[nodiscard]] const ScalabilityClassifier& classifier() const {
    return classifier_;
  }

 private:
  /// Characterize an unknown application (profile + classify + predict N_P
  /// + validation sample) and record it.
  [[nodiscard]] std::pair<ProfileData, KnowledgeRecord> characterize(
      const workloads::WorkloadSignature& app);

  /// Knowledge-DB lookup with characterization fallback; the bool reports a
  /// cache hit.
  [[nodiscard]] std::tuple<ProfileData, KnowledgeRecord, bool>
  get_or_characterize(const workloads::WorkloadSignature& app);

  /// Per-node variability multipliers of the first `nodes` nodes.
  [[nodiscard]] std::vector<double> node_multipliers(int nodes) const;

  sim::SimExecutor* executor_;
  SchedulerOptions options_;
  SmartProfiler profiler_;
  ScalabilityClassifier classifier_;
  InflectionPredictor inflection_;
  NodeConfigSelector selector_;
  ClusterAllocator allocator_;
  VariabilityCoordinator variability_;
  KnowledgeDb db_;
  obs::ObsSession* obs_ = nullptr;
};

}  // namespace clip::core
