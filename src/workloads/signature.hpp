// WorkloadSignature: the contract between a workload and the hardware model.
//
// The paper characterizes applications by how their performance responds to
// concurrency, frequency, memory power and placement (§II), and distills that
// into three scalability classes. Our signature is the generative model
// behind those observations: a small set of physically meaningful parameters
// from which the simulator derives execution time, power draw and hardware
// event rates for any configuration. The catalog (catalog.hpp) instantiates
// one signature per paper benchmark, calibrated so each lands in the paper's
// class with the paper's half/all-core speedup ratio (Fig. 6).
#pragma once

#include <string>

namespace clip::workloads {

/// Paper §II scalability classes.
enum class ScalabilityClass {
  kLinear,      ///< speedup ∝ n (EP-like, CoMD, AMG, miniMD)
  kLogarithmic, ///< linear until inflection, reduced growth after (BT-MZ, LU-MZ, CloverLeaf)
  kParabolic,   ///< performance *drops* beyond the inflection (SP-MZ, miniAero, TeaLeaf)
};

[[nodiscard]] const char* to_string(ScalabilityClass c);

/// Workload access pattern from paper Table II.
enum class WorkloadPattern {
  kCompute,
  kComputeMemory,
  kMemory,
};

[[nodiscard]] const char* to_string(WorkloadPattern p);

/// Generative performance/power parameters of one application+input pair.
///
/// All times are for the *whole problem*: `node_base_time_s` is the modeled
/// runtime on one node, one core, at nominal frequency; strong scaling
/// divides the work across nodes and threads.
struct WorkloadSignature {
  std::string name;
  std::string parameters;       ///< input deck, e.g. "C" or "-n 240 240 240"
  WorkloadPattern pattern = WorkloadPattern::kCompute;

  // --- Node-level performance model ---------------------------------------
  double node_base_time_s = 100.0;   ///< 1-node 1-core full-frequency runtime
  double serial_fraction = 0.01;     ///< Amdahl serial fraction of node work
  double memory_boundedness = 0.0;   ///< fraction of parallel work limited by DRAM bandwidth (0..1)
  double bw_per_core_gbps = 0.0;     ///< per-core DRAM demand at nominal frequency
  double fork_overhead_s = 1e-3;     ///< per-extra-thread management cost
  double sync_coeff_s = 0.0;         ///< synchronization/contention cost scale
  double sync_exponent = 2.0;        ///< contention growth: sync_coeff*(n-1)^exp
  double shared_data_fraction = 0.2; ///< traffic share touching shared (possibly remote) data

  // --- Power-relevant microarchitectural activity -------------------------
  double compute_intensity = 0.8;    ///< 0..1, scales dynamic core power
  double ipc = 1.6;                  ///< retired instructions per active cycle
  double icache_pressure = 0.05;     ///< 0..1, scales ICACHE miss rate
  double write_fraction = 0.33;      ///< share of DRAM traffic that is writes

  // --- Cluster-level (MPI) model -------------------------------------------
  double comm_latency_s = 0.05;      ///< α term per log2(N) step
  double comm_surface_coeff = 0.0;   ///< β term on per-node halo surface
  bool has_predefined_process_counts = true; ///< NPB-style power-of-two grids

  // --- Ground truth for calibration/tests (not used by CLIP decisions) ----
  ScalabilityClass expected_class = ScalabilityClass::kLinear;

  /// Basic physical validity; throws clip::PreconditionError when violated.
  void validate() const;
};

}  // namespace clip::workloads
