#include "runtime/telemetry.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace clip::runtime {

Telemetry::Telemetry(TelemetryOptions options) : options_(options) {
  CLIP_REQUIRE(options.sample_period_s > 0.0,
               "sample period must be positive");
  CLIP_REQUIRE(options.noise_sigma >= 0.0, "noise sigma must be >= 0");
}

std::vector<TelemetrySample> Telemetry::record(const sim::Measurement& m,
                                               int threads) const {
  CLIP_REQUIRE(!m.nodes.empty(), "measurement has no nodes");
  Rng rng(options_.seed);
  std::vector<TelemetrySample> series;
  const int samples = std::max(
      1, static_cast<int>(m.time.value() / options_.sample_period_s));
  for (int s = 0; s < samples; ++s) {
    for (std::size_t n = 0; n < m.nodes.size(); ++n) {
      const auto& node = m.nodes[n];
      TelemetrySample sample;
      sample.time_s = s * options_.sample_period_s;
      sample.phase = "-";
      sample.node = static_cast<int>(n);
      const double jitter = 1.0 + rng.normal(0.0, options_.noise_sigma);
      sample.cpu_power_w = node.cpu_power.value() * jitter;
      sample.mem_power_w = node.mem_power.value() * jitter;
      sample.freq_ghz = node.frequency.value();
      sample.threads = threads;
      series.push_back(std::move(sample));
    }
  }
  return series;
}

std::vector<TelemetrySample> Telemetry::record_phased(
    const sim::PhasedMeasurement& m, int nodes) const {
  CLIP_REQUIRE(!m.phases.empty(), "phased measurement has no phases");
  CLIP_REQUIRE(nodes >= 1, "need at least one node");
  Rng rng(options_.seed);
  std::vector<TelemetrySample> series;
  double t0 = 0.0;
  for (const auto& phase : m.phases) {
    const int samples = std::max(
        1,
        static_cast<int>(phase.time.value() / options_.sample_period_s));
    const double per_node_power = phase.avg_power.value() / nodes;
    for (int s = 0; s < samples; ++s) {
      for (int n = 0; n < nodes; ++n) {
        TelemetrySample sample;
        sample.time_s = t0 + s * options_.sample_period_s;
        sample.phase = phase.phase;
        sample.node = n;
        const double jitter = 1.0 + rng.normal(0.0, options_.noise_sigma);
        // The phased measurement reports whole-cluster power; split evenly
        // (homogeneous default) and keep the CPU/DRAM split implicit.
        sample.cpu_power_w = per_node_power * 0.78 * jitter;
        sample.mem_power_w = per_node_power * 0.22 * jitter;
        sample.freq_ghz = phase.frequency.value();
        sample.threads = phase.threads;
        series.push_back(std::move(sample));
      }
    }
    t0 += phase.time.value();
  }
  return series;
}

double Telemetry::energy_j(const std::vector<TelemetrySample>& series,
                           double sample_period_s) {
  double acc = 0.0;
  for (const auto& s : series)
    acc += (s.cpu_power_w + s.mem_power_w) * sample_period_s;
  return acc;
}

std::vector<obs::CounterSample> Telemetry::to_trace_counters(
    const std::vector<TelemetrySample>& series) {
  std::vector<obs::CounterSample> counters;
  counters.reserve(series.size());
  for (const auto& s : series) {
    obs::CounterSample c;
    c.name = "power.node" + std::to_string(s.node);
    c.time_us = s.time_s * 1e6;
    c.series = {{"cpu_w", s.cpu_power_w}, {"mem_w", s.mem_power_w}};
    counters.push_back(std::move(c));
  }
  return counters;
}

void Telemetry::to_timeline(obs::Timeline& timeline,
                            const std::vector<TelemetrySample>& series,
                            double t0_s) {
  std::string last_phase;
  for (const auto& s : series) {
    const std::string prefix = "node" + std::to_string(s.node);
    const double t = t0_s + s.time_s;
    timeline.record(prefix + ".cpu_w", t, s.cpu_power_w);
    timeline.record(prefix + ".mem_w", t, s.mem_power_w);
    timeline.record(prefix + ".freq_ghz", t, s.freq_ghz);
    if (s.node == 0 && s.phase != last_phase) {
      timeline.event("job.phase", t, s.phase);
      last_phase = s.phase;
    }
  }
}

void Telemetry::write(const std::filesystem::path& path,
                      const std::vector<TelemetrySample>& series) {
  CsvDocument doc;
  doc.header = {"time_s", "phase", "node", "cpu_w", "mem_w", "freq_ghz",
                "threads"};
  for (const auto& s : series) {
    doc.rows.push_back({format_double(s.time_s, 4), s.phase,
                        std::to_string(s.node),
                        format_double(s.cpu_power_w, 3),
                        format_double(s.mem_power_w, 3),
                        format_double(s.freq_ghz, 2),
                        std::to_string(s.threads)});
  }
  write_csv(path, doc);
}

}  // namespace clip::runtime
