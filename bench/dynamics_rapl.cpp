// RAPL enforcement dynamics — the time-stepped controller vs the analytic
// solver. The paper treats RAPL as a black box that "caps and measures
// power" (§V-A); this harness opens the box: it shows the window-average
// control loop settling onto the cap, the adjacent-state duty-cycling that
// produces effective frequencies between P-states, the T-state (clock
// modulation) region below f_min, and validates that the closed-form
// operating points the scheduler plans with match the controller's
// steady-state behaviour.
#include <iostream>

#include "bench_common.hpp"
#include "sim/rapl.hpp"
#include "sim/rapl_controller.hpp"
#include "util/strings.hpp"

using namespace clip;

int main(int argc, char** argv) {
  const bench::BenchContext ctx(argc, argv);
  const sim::MachineSpec spec;
  const sim::RaplControllerSim controller(spec);
  const sim::RaplSolver solver(spec);

  Table t({"workload", "PKG cap (W)", "analytic: f/duty",
           "controller: avg f (GHz)", "analytic thr", "controller thr",
           "agreement", "duty osc."});
  t.set_title(
      "RAPL enforcement: analytic operating points vs time-stepped "
      "window-average controller (24 threads, scatter)");

  for (const char* name : {"CoMD", "BT-MZ", "STREAM-Triad"}) {
    const auto w = *workloads::find_benchmark(name);
    for (double cap : {40.0, 55.0, 70.0, 90.0, 110.0, 130.0}) {
      sim::NodeConfig cfg;
      cfg.threads = 24;
      cfg.affinity = parallel::AffinityPolicy::kScatter;
      cfg.cpu_cap = Watts(cap);
      cfg.mem_cap = Watts(1e9);
      const sim::OperatingPoint op = solver.solve(w, 1.0, cfg);
      cfg.cpu_cap = Watts(1e9);
      const sim::OperatingPoint top = solver.solve(w, 1.0, cfg);
      const double analytic_thr =
          top.perf.time.value() / op.perf.time.value();

      const sim::RaplTrace trace = controller.simulate(
          w, 24, parallel::AffinityPolicy::kScatter, 68.0, Watts(cap));

      t.add_row({name, format_double(cap, 0),
                 format_double(op.frequency.value(), 2) + " / " +
                     format_double(op.duty_factor, 2),
                 format_double(trace.avg_freq_ghz, 2),
                 format_double(analytic_thr, 3),
                 format_double(trace.throughput, 3),
                 format_percent(trace.throughput / analytic_thr - 1.0),
                 format_double(trace.duty_low_fraction(), 2)});
    }
  }
  ctx.print(t);

  // A settling trace for one point, decimated for the terminal.
  const auto w = *workloads::find_benchmark("CoMD");
  sim::RaplControllerOptions opt;
  opt.steps = 400;
  opt.initial_state = spec.ladder.state_count() - 1;  // start at full tilt
  const sim::RaplTrace trace = controller.simulate(
      w, 24, parallel::AffinityPolicy::kScatter, 68.0, Watts(90.0), opt);
  std::cout << "Settling from 2.3 GHz under a 90 W cap (CoMD), 1 ms steps "
               "(every 20th sample):\n  t(ms) power(W) f(GHz)\n";
  for (std::size_t i = 0; i < trace.time_s.size(); i += 20)
    std::cout << "  " << format_double(trace.time_s[i] * 1000.0, 0) << "  "
              << format_double(trace.power_w[i], 1) << "  "
              << format_double(trace.freq_ghz[i], 2) << '\n';
  return 0;
}
