// Embeddable telemetry endpoint for a running coordinator.
//
// The server is strictly a *reader*: the event loop publishes immutable
// StatusSnapshot copies into it, and the HTTP thread renders those copies
// plus lock-protected snapshots of the MetricsRegistry / Timeline it was
// handed. Nothing on the serving path can mutate scheduler state, so a run
// with a server attached stays byte-identical to a detached run (the same
// contract the flight recorder and the journal follow; `telemetry_port`
// defaults to off).
//
// Endpoints (HTTP/1.0, one request per connection):
//   /metrics              Prometheus text exposition (render_prometheus)
//   /healthz              200 "ok" in NORMAL mode, 503 when degraded
//   /status               JSON: queue depth, running jobs, free watts,
//                         current mode, journal seq, sim time, job counts
//   /timeline?series=S    JSONL tail of one flight-recorder series
//                         (&n=K caps the tail length)
//
// Plain POSIX sockets, no wall-clock reads (clip-lint D1 clean): the
// accept loop blocks on accept(2) and is woken for shutdown by closing the
// listening socket; per-connection receive/send timeouts are plain socket
// options.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/timeline.hpp"

namespace clip::obs {

/// Point-in-time view of the coordinator, published by the event loop at
/// each scheduling pass. Copied wholesale under the server's mutex — the
/// HTTP thread never reads loop state directly.
struct StatusSnapshot {
  double now_s = 0.0;          ///< simulated seconds
  int queue_depth = 0;         ///< jobs waiting
  int running_jobs = 0;        ///< jobs currently placed
  double free_watts = 0.0;     ///< unallocated cluster budget
  std::string mode = "NORMAL";  ///< DegradedMode, to_string form
  std::uint64_t journal_seq = 0;  ///< last durable journal record
  int jobs_completed = 0;
  int jobs_failed = 0;
  bool run_active = false;  ///< true between run start and finalize

  [[nodiscard]] std::string to_json() const;
};

struct TelemetryServerOptions {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (read it back via
  /// port() — this is what the integration tests use).
  int port = 0;
  /// Optional registry behind /metrics (render_prometheus snapshots under
  /// the registry's own mutex). May be null: /metrics serves empty.
  const MetricsRegistry* metrics = nullptr;
  /// Optional flight recorder behind /timeline. May be null.
  const Timeline* timeline = nullptr;
  /// Default cap on points returned by /timeline (override per request
  /// with ?n=K).
  std::size_t timeline_tail = 256;
};

class TelemetryServer {
 public:
  /// Binds and starts serving immediately. Throws PreconditionError when
  /// the port cannot be bound.
  explicit TelemetryServer(TelemetryServerOptions options);
  ~TelemetryServer();

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// The bound port (the ephemeral one when options.port was 0).
  [[nodiscard]] int port() const { return port_; }

  /// Publish a fresh status snapshot (loop thread; cheap copy under mutex).
  void publish(const StatusSnapshot& snapshot);

  /// Stop serving and join the accept thread. Idempotent; the destructor
  /// calls it.
  void stop();

  /// Request router, exposed so tests can exercise every endpoint without
  /// a socket. `target` is the request path plus optional query string;
  /// returns the full HTTP response (status line, headers, body).
  [[nodiscard]] std::string respond(const std::string& target) const;

  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void serve();
  void handle_connection(int fd);

  TelemetryServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_{0};
  mutable std::mutex mu_;
  StatusSnapshot snapshot_;
};

/// Minimal blocking HTTP/1.0 GET against 127.0.0.1 (`host` accepts a
/// dotted quad or "localhost"). Returns the full response text (headers +
/// body); throws PreconditionError when the connection fails. Used by
/// `clipctl top`, the endpoint integration tests and bench/obs_overhead.
[[nodiscard]] std::string http_get(const std::string& host, int port,
                                   const std::string& target);

/// The body part of an HTTP response returned by http_get (everything
/// after the first blank line; the whole input when no header break is
/// found).
[[nodiscard]] std::string http_body(const std::string& response);

}  // namespace clip::obs
