// Causal trace identity for one job's journey through the coordinator.
//
// A TraceContext is minted per job from a *seeded* clip::Rng stream — never
// from entropy — so the ids a run assigns are a deterministic function of
// (trace seed, job order): re-running the same workload, or re-executing a
// journal suffix during crash recovery, reproduces the same trace_id for
// the same job, which is what lets journal records, timeline events, span
// args and the run report all correlate by id across process restarts.
//
// Subsystem span ids are derived from the trace_id by hashing the
// subsystem name (queue, launcher, redist, journal, ...) — no shared
// counter, so any subsystem can compute its own span id without
// coordination, and the id is stable for a given (trace, subsystem) pair.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/rng.hpp"

namespace clip::obs {

struct TraceContext {
  std::uint64_t trace_id = 0;  ///< 0 = "not traced"

  [[nodiscard]] bool valid() const { return trace_id != 0; }

  /// 16 lowercase hex digits (zero-padded), the wire/CSV form of the id.
  [[nodiscard]] std::string hex() const { return to_hex(trace_id); }

  /// Deterministic span id for one subsystem of this trace: FNV-1a of the
  /// subsystem name folded into the trace id. Stable for a given
  /// (trace, subsystem) pair; distinct subsystems get distinct ids.
  [[nodiscard]] std::uint64_t span_id(std::string_view subsystem) const {
    std::uint64_t h = 0xcbf29ce484222325ull ^ trace_id;
    for (const char c : subsystem) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ull;
    }
    return h == 0 ? 1 : h;
  }

  [[nodiscard]] std::string span_hex(std::string_view subsystem) const {
    return to_hex(span_id(subsystem));
  }

  /// Mint a fresh context from a seeded stream. Draws again on the
  /// (vanishingly unlikely) all-zero word so 0 stays reserved for
  /// "not traced".
  [[nodiscard]] static TraceContext make(Rng& rng) {
    TraceContext ctx;
    do {
      ctx.trace_id = rng.next_u64();
    } while (ctx.trace_id == 0);
    return ctx;
  }

  /// Parse the hex() form back; returns an invalid context (trace_id 0)
  /// for anything that is not exactly 16 hex digits.
  [[nodiscard]] static TraceContext parse_hex(std::string_view text) {
    TraceContext ctx;
    if (text.size() != 16) return ctx;
    std::uint64_t v = 0;
    for (const char c : text) {
      v <<= 4;
      if (c >= '0' && c <= '9')
        v |= static_cast<std::uint64_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        v |= static_cast<std::uint64_t>(c - 'a' + 10);
      else
        return ctx;
    }
    ctx.trace_id = v;
    return ctx;
  }

 private:
  [[nodiscard]] static std::string to_hex(std::uint64_t v) {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
      out[static_cast<std::size_t>(i)] = kDigits[v & 0xF];
      v >>= 4;
    }
    return out;
  }
};

}  // namespace clip::obs
