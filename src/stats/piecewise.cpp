#include "stats/piecewise.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/check.hpp"

namespace clip::stats {

double PiecewiseLinearModel::predict(double x) const {
  if (x <= breakpoint) return slope1 * x + intercept1;
  return slope2 * x + intercept2;
}

SegmentFit fit_segment(const std::vector<double>& x,
                       const std::vector<double>& y, std::size_t begin,
                       std::size_t end) {
  CLIP_REQUIRE(end <= x.size() && begin < end, "bad segment range");
  SegmentFit fit;
  fit.count = end - begin;
  const double n = static_cast<double>(fit.count);
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  if (std::fabs(denom) < 1e-12) {
    // All x equal: fall back to a flat line through the mean.
    fit.slope = 0.0;
    fit.intercept = sy / n;
  } else {
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;
  }
  for (std::size_t i = begin; i < end; ++i) {
    const double r = y[i] - (fit.slope * x[i] + fit.intercept);
    fit.sse += r * r;
  }
  return fit;
}

PiecewiseLinearModel fit_piecewise_linear(const std::vector<double>& x,
                                          const std::vector<double>& y) {
  CLIP_REQUIRE(x.size() == y.size(), "x/y size mismatch");
  CLIP_REQUIRE(x.size() >= 4, "piecewise fit needs >= 4 samples");

  // Sort samples by x (the callers pass thread counts which are already
  // sorted, but do not rely on it).
  std::vector<std::size_t> order(x.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return x[a] < x[b]; });
  std::vector<double> xs(x.size()), ys(y.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    xs[i] = x[order[i]];
    ys[i] = y[order[i]];
  }

  PiecewiseLinearModel best;
  best.sse = std::numeric_limits<double>::infinity();
  // Breakpoint after index k: left segment [0, k], right segment [k+1, n).
  // Each segment needs >= 2 points.
  for (std::size_t k = 1; k + 2 < xs.size(); ++k) {
    if (xs[k] == xs[k + 1]) continue;  // degenerate split
    const SegmentFit left = fit_segment(xs, ys, 0, k + 1);
    const SegmentFit right = fit_segment(xs, ys, k + 1, xs.size());
    const double total = left.sse + right.sse;
    if (total < best.sse) {
      best.sse = total;
      best.breakpoint = xs[k];
      best.slope1 = left.slope;
      best.intercept1 = left.intercept;
      best.slope2 = right.slope;
      best.intercept2 = right.intercept;
    }
  }
  CLIP_ENSURE(std::isfinite(best.sse), "piecewise fit found no valid split");
  return best;
}

}  // namespace clip::stats
