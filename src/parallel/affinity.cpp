#include "parallel/affinity.hpp"

#include <sched.h>
#include <unistd.h>

#include <algorithm>

#include "util/check.hpp"

namespace clip::parallel {

const char* to_string(AffinityPolicy p) {
  switch (p) {
    case AffinityPolicy::kCompact:
      return "compact";
    case AffinityPolicy::kScatter:
      return "scatter";
  }
  return "?";
}

int Placement::total_threads() const {
  int total = 0;
  for (int t : threads_per_socket) total += t;
  return total;
}

int Placement::active_sockets() const {
  int active = 0;
  for (int t : threads_per_socket)
    if (t > 0) ++active;
  return active;
}

double Placement::cross_socket_factor() const {
  const int n = total_threads();
  if (n <= 1 || threads_per_socket.size() < 2) return 0.0;
  // Pairwise cross-socket interaction probability, normalized so an even
  // split over two sockets yields 1. Generalizes to >2 sockets.
  double cross_pairs = 0.0;
  for (std::size_t i = 0; i < threads_per_socket.size(); ++i)
    for (std::size_t j = i + 1; j < threads_per_socket.size(); ++j)
      cross_pairs += static_cast<double>(threads_per_socket[i]) *
                     static_cast<double>(threads_per_socket[j]);
  const double max_pairs = static_cast<double>(n) * n / 4.0;
  return std::min(1.0, cross_pairs / max_pairs);
}

Placement place_threads(const NodeShape& shape, int threads,
                        AffinityPolicy policy) {
  CLIP_REQUIRE(shape.sockets > 0 && shape.cores_per_socket > 0,
               "node shape must be non-empty");
  CLIP_REQUIRE(threads > 0, "placement needs at least one thread");
  CLIP_REQUIRE(threads <= shape.total_cores(),
               "more threads than cores on the node");

  Placement p;
  p.threads_per_socket.assign(shape.sockets, 0);
  switch (policy) {
    case AffinityPolicy::kCompact: {
      int remaining = threads;
      for (int s = 0; s < shape.sockets && remaining > 0; ++s) {
        const int take = std::min(remaining, shape.cores_per_socket);
        p.threads_per_socket[s] = take;
        remaining -= take;
      }
      break;
    }
    case AffinityPolicy::kScatter: {
      for (int t = 0; t < threads; ++t)
        ++p.threads_per_socket[t % shape.sockets];
      break;
    }
  }
  CLIP_ENSURE(p.total_threads() == threads, "placement lost threads");
  return p;
}

int worker_cpu(int worker_index, int host_cpus, AffinityPolicy policy,
               const NodeShape& shape) {
  CLIP_REQUIRE(worker_index >= 0, "worker index must be >= 0");
  CLIP_REQUIRE(host_cpus > 0, "host must have CPUs");
  int logical;
  switch (policy) {
    case AffinityPolicy::kCompact:
      logical = worker_index;
      break;
    case AffinityPolicy::kScatter: {
      // worker 0 -> socket0 core0, worker 1 -> socket1 core0, ...
      const int socket = worker_index % shape.sockets;
      const int core = worker_index / shape.sockets;
      logical = socket * shape.cores_per_socket + core;
      break;
    }
    default:
      logical = worker_index;
  }
  return logical % host_cpus;
}

bool pin_current_thread(int cpu) {
  if (cpu < 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  return sched_setaffinity(0, sizeof set, &set) == 0;
}

int host_cpu_count() {
  const long n = sysconf(_SC_NPROCESSORS_ONLN);
  return n > 0 ? static_cast<int>(n) : 1;
}

}  // namespace clip::parallel
