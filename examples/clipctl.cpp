// clipctl — the command-line front door of the framework (the paper's
// "user-friendly convenient power-bounded computing environment", §IV-A).
//
//   clipctl apps                         list the known applications
//   clipctl profile <app>                smart-profile + classify
//   clipctl schedule <app> <watts>       print the CLIP decision
//   clipctl script <app> <watts>         print the generated launch script
//   clipctl run <app> <watts>            schedule + execute + report
//   clipctl compare <app> <watts>        all methods side by side
//   clipctl trace <app> <watts> [out]    schedule + execute under the obs
//                                        layer: dumps a Chrome-trace JSON
//                                        (Perfetto-loadable, spans for every
//                                        pipeline stage + per-node power
//                                        counter tracks) and prints the
//                                        metrics summary table
//   clipctl metrics <app> <watts>        schedule + execute, then dump the
//                                        metrics registry in Prometheus text
//                                        exposition format
//   clipctl record <watts> <out-dir>     run the Table II job mix through the
//                                        power-aware queue with the flight
//                                        recorder attached; persist the run
//                                        record (timeline/jobs/summary/spans
//                                        CSVs + metrics.prom) into <out-dir>
//   clipctl report <run-dir> [--json]    render a recorded run as a
//                                        deterministic Markdown (or JSON)
//                                        report
//   clipctl journal <run-dir|file>       inspect a write-ahead journal:
//                                        salvage status, record/snapshot
//                                        counts, per-kind totals
//   clipctl recover <watts> <run-dir>    resume a crash-interrupted record
//                                        run from its journal (latest
//                                        snapshot + replay) and rewrite the
//                                        completed run record
//
// Applications are named as in Table II (e.g. SP-MZ, TeaLeaf, CoMD).
#include <filesystem>
#include <iostream>
#include <string>

#include "baselines/all_in.hpp"
#include "baselines/coordinated.hpp"
#include "baselines/lower_limit.hpp"
#include "core/scheduler.hpp"
#include "obs/obs.hpp"
#include "runtime/journal.hpp"
#include "runtime/launcher.hpp"
#include "runtime/queue.hpp"
#include "runtime/run_report.hpp"
#include "runtime/telemetry.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workloads/catalog.hpp"

using namespace clip;

namespace {

int usage() {
  std::cerr << "usage: clipctl apps\n"
               "       clipctl profile  <app>\n"
               "       clipctl schedule <app> <watts>\n"
               "       clipctl script   <app> <watts>\n"
               "       clipctl run      <app> <watts>\n"
               "       clipctl compare  <app> <watts>\n"
               "       clipctl trace    <app> <watts> [out.json]\n"
               "       clipctl metrics  <app> <watts>\n"
               "       clipctl record   <watts> <out-dir>\n"
               "       clipctl report   <run-dir> [--json]\n"
               "       clipctl journal  <run-dir|journal-file>\n"
               "       clipctl recover  <watts> <run-dir>\n";
  return 2;
}

workloads::WorkloadSignature lookup_or_die(const std::string& name) {
  if (auto w = workloads::find_benchmark(name)) return *w;
  std::cerr << "unknown application '" << name
            << "' — try `clipctl apps`\n";
  std::exit(2);
}

double watts_or_die(const std::string& arg) {
  try {
    const double v = std::stod(arg);
    if (v > 0.0) return v;
  } catch (const std::exception&) {
  }
  std::cerr << "'" << arg << "' is not a positive wattage\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];

  sim::SimExecutor cluster{sim::MachineSpec{}};

  if (command == "apps") {
    Table t({"name", "parameters", "pattern", "scalability (Table II)"});
    t.set_title("Known applications");
    for (const auto& w : workloads::paper_benchmarks())
      t.add_row({w.name, w.parameters, workloads::to_string(w.pattern),
                 workloads::to_string(w.expected_class)});
    t.print(std::cout);
    return 0;
  }

  if (command == "record") {
    if (argc < 4) return usage();
    const Watts cluster_budget(watts_or_die(argv[2]));
    const std::filesystem::path dir(argv[3]);

    obs::ObsSession session;
    obs::MemorySink sink;
    session.set_sink(&sink);
    obs::Timeline timeline;
    core::ClipScheduler scheduler(cluster, workloads::training_benchmarks());
    scheduler.set_observer(&session);
    cluster.set_observer(&session);

    runtime::QueueOptions qopt;
    qopt.cluster_budget = cluster_budget;
    runtime::Journal journal;
    runtime::PowerAwareJobQueue queue(cluster, scheduler, qopt);
    queue.set_observer(&session);
    queue.set_timeline(&timeline);
    queue.set_journal(&journal);
    const auto report = queue.run(workloads::paper_benchmarks());

    try {
      runtime::write_run_record(dir, cluster_budget, report, timeline,
                                sink.spans(), &session.metrics());
      journal.save(dir / runtime::RunRecordFiles::kJournal);
    } catch (const std::exception& e) {
      std::cerr << "cannot write run record: " << e.what() << "\n";
      return 1;
    }
    std::cout << "recorded " << report.jobs.size() << " jobs ("
              << report.jobs_completed() << " completed, makespan "
              << format_double(report.makespan_s, 1) << " s) into "
              << dir.string() << "\nrender it with: clipctl report "
              << dir.string() << "\n";
    return 0;
  }
  if (command == "report") {
    if (argc < 3) return usage();
    const std::filesystem::path dir(argv[2]);
    const bool json = argc >= 4 && std::string(argv[3]) == "--json";
    try {
      std::cout << (json ? runtime::render_json_report(dir)
                         : runtime::render_markdown_report(dir));
    } catch (const std::exception& e) {
      std::cerr << "cannot render report: " << e.what() << "\n";
      return 1;
    }
    return 0;
  }

  if (command == "journal") {
    if (argc < 3) return usage();
    std::filesystem::path path(argv[2]);
    if (std::filesystem::is_directory(path))
      path /= runtime::RunRecordFiles::kJournal;
    runtime::Journal journal;
    runtime::JournalLoadResult loaded;
    try {
      loaded = journal.load(path);
    } catch (const std::exception& e) {
      std::cerr << "cannot load journal: " << e.what() << "\n";
      return 1;
    }
    std::cout << "journal     : " << path.string() << "\n"
              << journal.describe();
    if (loaded.salvaged)
      std::cout << "salvaged    : dropped " << loaded.dropped_lines
                << " corrupt tail line(s) — " << loaded.gap << "\n";
    return 0;
  }
  if (command == "recover") {
    if (argc < 4) return usage();
    const Watts cluster_budget(watts_or_die(argv[2]));
    const std::filesystem::path dir(argv[3]);
    const auto path = dir / runtime::RunRecordFiles::kJournal;

    runtime::Journal journal;
    runtime::JournalLoadResult loaded;
    try {
      loaded = journal.load(path);
    } catch (const std::exception& e) {
      std::cerr << "cannot load journal: " << e.what() << "\n";
      return 1;
    }
    if (loaded.salvaged)
      std::cout << "salvaged journal: dropped " << loaded.dropped_lines
                << " corrupt tail line(s) — " << loaded.gap << "\n";

    // Mirror `record`'s configuration exactly: recover() verifies the
    // journal's begin record against it and refuses a mismatched resume.
    obs::ObsSession session;
    obs::MemorySink sink;
    session.set_sink(&sink);
    obs::Timeline timeline;
    core::ClipScheduler scheduler(cluster, workloads::training_benchmarks());
    scheduler.set_observer(&session);
    cluster.set_observer(&session);

    runtime::QueueOptions qopt;
    qopt.cluster_budget = cluster_budget;
    std::vector<runtime::QueueJob> jobs;
    for (const auto& w : workloads::paper_benchmarks()) jobs.push_back({w, 0});
    runtime::QueueEventLoop loop(cluster, scheduler, qopt, jobs);
    loop.set_observer(&session);
    loop.set_timeline(&timeline);

    runtime::QueueReport report;
    try {
      report = loop.recover(journal);
    } catch (const std::exception& e) {
      std::cerr << "cannot recover: " << e.what() << "\n";
      return 1;
    }
    try {
      runtime::write_run_record(dir, cluster_budget, report, timeline,
                                sink.spans(), &session.metrics());
      journal.save(path);
    } catch (const std::exception& e) {
      std::cerr << "cannot write run record: " << e.what() << "\n";
      return 1;
    }
    std::cout << "recovered " << report.jobs.size() << " jobs ("
              << report.jobs_completed() << " completed, makespan "
              << format_double(report.makespan_s, 1) << " s) into "
              << dir.string() << "\nrender it with: clipctl report "
              << dir.string() << "\n";
    return 0;
  }

  if (argc < 3) return usage();
  const auto app = lookup_or_die(argv[2]);

  if (command == "profile") {
    core::SmartProfiler profiler(cluster);
    const core::ScalabilityClassifier classifier;
    const auto p = profiler.profile(app);
    std::cout << "application : " << app.name << " " << app.parameters
              << "\nhalf/all    : "
              << format_double(p.perf_ratio_half_over_all, 3)
              << "\nclass       : "
              << workloads::to_string(classifier.classify(p))
              << "\naffinity    : "
              << parallel::to_string(p.preferred_affinity)
              << "\nnode BW     : " << format_double(p.node_bw_gbps, 1)
              << " GB/s (intensity "
              << format_double(p.memory_intensity, 2) << ")"
              << "\nprofile cost: "
              << format_double(p.profiling_cost.value(), 2) << " s\n";
    return 0;
  }

  if (argc < 4) return usage();
  const Watts budget(watts_or_die(argv[3]));
  core::ClipScheduler clip(cluster, workloads::training_benchmarks());

  if (command == "schedule") {
    const auto d = clip.schedule(app, budget);
    std::cout << d.describe() << "\npredicted node time: "
              << format_double(d.predicted_node_time.value(), 2) << " s\n";
    return 0;
  }
  if (command == "script") {
    runtime::Launcher launcher(cluster, workloads::training_benchmarks());
    runtime::JobSpec spec;
    spec.app = app;
    spec.cluster_budget = budget;
    std::cout << launcher.plan_script(spec);
    return 0;
  }
  if (command == "run") {
    const auto d = clip.schedule(app, budget);
    const auto m = cluster.run(app, d.cluster);
    std::cout << d.describe() << "\nexecuted: "
              << format_double(m.time.value(), 2) << " s at "
              << format_double(m.avg_power.value(), 1) << " W ("
              << format_double(m.energy.value() / 1000.0, 2) << " kJ)\n";
    return 0;
  }
  if (command == "trace") {
    // Observe one decision end-to-end: sink attached after construction so
    // the trace shows this schedule() alone, not the training sweep.
    obs::ObsSession session;
    obs::MemorySink sink;
    session.set_sink(&sink);
    clip.set_observer(&session);
    cluster.set_observer(&session);

    const auto d = clip.schedule(app, budget);
    const auto m = cluster.run(app, d.cluster);

    // Per-node power counter tracks from the power-meter series (noise off:
    // the trace should show the planned operating point, not meter jitter).
    runtime::TelemetryOptions topt;
    topt.noise_sigma = 0.0;
    const runtime::Telemetry telemetry(topt);
    const auto counters = runtime::Telemetry::to_trace_counters(
        telemetry.record(m, d.cluster.node.threads));

    const std::filesystem::path out =
        argc >= 5 ? std::filesystem::path(argv[4])
                  : std::filesystem::path("clip_trace.json");
    try {
      obs::write_chrome_trace(out, sink.spans(), counters);
    } catch (const std::exception& e) {
      std::cerr << "cannot write trace: " << e.what() << "\n";
      return 1;
    }

    std::cout << d.describe() << "\nexecuted: "
              << format_double(m.time.value(), 2) << " s at "
              << format_double(m.avg_power.value(), 1) << " W\n\n";
    session.metrics().summary_table().print(std::cout);
    std::cout << "\ntrace: " << out.string() << " (" << sink.span_count()
              << " spans) — load it at https://ui.perfetto.dev or "
                 "chrome://tracing\n";
    return 0;
  }
  if (command == "metrics") {
    obs::ObsSession session;
    clip.set_observer(&session);
    cluster.set_observer(&session);
    const auto d = clip.schedule(app, budget);
    (void)cluster.run(app, d.cluster);
    std::cout << session.metrics().render_prometheus();
    return 0;
  }
  if (command == "compare") {
    baselines::AllInScheduler all_in(cluster.spec());
    baselines::LowerLimitScheduler lower(cluster.spec());
    baselines::CoordinatedScheduler coordinated(cluster);
    Table t({"method", "nodes", "threads", "time (s)", "power (W)"});
    t.set_title(app.name + " @" + format_double(budget.value(), 0) + " W");
    auto row = [&](const std::string& name, const sim::ClusterConfig& cfg) {
      const auto m = cluster.run_exact(app, cfg);
      t.add_row({name, std::to_string(cfg.nodes),
                 std::to_string(cfg.node.threads),
                 format_double(m.time.value(), 2),
                 format_double(m.avg_power.value(), 1)});
    };
    row("All-In", all_in.plan(app, budget));
    row("Lower Limit", lower.plan(app, budget));
    row("Coordinated", coordinated.plan(app, budget));
    row("CLIP", clip.schedule(app, budget).cluster);
    t.print(std::cout);
    return 0;
  }
  return usage();
}
