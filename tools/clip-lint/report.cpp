// Report rendering for clip-lint: deterministic text and JSON (stable field
// order, no timestamps — the tool obeys its own D1). The JSON carries the
// suppression count so reviewers can watch it trend across PRs.

#include <map>
#include <sstream>

#include "lint.hpp"

namespace clip::lint {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

Summary summarize(const std::vector<Finding>& findings, int files_scanned) {
  Summary s;
  s.files_scanned = files_scanned;
  for (const Finding& f : findings)
    (f.suppressed ? s.suppressed : s.unsuppressed) += 1;
  return s;
}

std::string to_json(const std::vector<Finding>& findings, int files_scanned) {
  const Summary s = summarize(findings, files_scanned);
  std::map<std::string, int> per_rule_open;
  std::map<std::string, int> per_rule_suppressed;
  for (const std::string& r : known_rules()) {
    per_rule_open[r] = 0;
    per_rule_suppressed[r] = 0;
  }
  for (const Finding& f : findings)
    (f.suppressed ? per_rule_suppressed : per_rule_open)[f.rule] += 1;

  std::ostringstream out;
  out << "{\n";
  out << "  \"tool\": \"clip-lint\",\n";
  out << "  \"files_scanned\": " << s.files_scanned << ",\n";
  out << "  \"unsuppressed\": " << s.unsuppressed << ",\n";
  out << "  \"suppressed\": " << s.suppressed << ",\n";
  out << "  \"per_rule\": {";
  bool first = true;
  for (const std::string& r : known_rules()) {
    out << (first ? "" : ", ") << '"' << r << "\": {\"open\": "
        << per_rule_open[r] << ", \"suppressed\": " << per_rule_suppressed[r]
        << '}';
    first = false;
  }
  out << "},\n";
  out << "  \"findings\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << "    {\"file\": \"" << json_escape(f.file) << "\", \"line\": "
        << f.line << ", \"rule\": \"" << f.rule << "\", \"suppressed\": "
        << (f.suppressed ? "true" : "false") << ", \"message\": \""
        << json_escape(f.message) << '"';
    if (f.suppressed)
      out << ", \"reason\": \"" << json_escape(f.reason) << '"';
    out << '}' << (i + 1 < findings.size() ? "," : "") << '\n';
  }
  out << "  ]\n";
  out << "}\n";
  return out.str();
}

std::string to_sarif(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  out << "  \"version\": \"2.1.0\",\n";
  out << "  \"runs\": [{\n";
  out << "    \"tool\": {\"driver\": {\n";
  out << "      \"name\": \"clip-analyze\",\n";
  out << "      \"informationUri\": \"docs/static-analysis.md\",\n";
  out << "      \"rules\": [\n";
  const auto& rules = known_rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out << "        {\"id\": \"" << rules[i]
        << "\", \"shortDescription\": {\"text\": \""
        << json_escape(rule_description(rules[i])) << "\"}}"
        << (i + 1 < rules.size() ? "," : "") << '\n';
  }
  out << "      ]\n";
  out << "    }},\n";
  out << "    \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << "      {\"ruleId\": \"" << f.rule << "\", \"level\": \""
        << (f.suppressed ? "note" : "error") << "\", \"message\": {\"text\": \""
        << json_escape(f.message) << "\"}, \"locations\": [{"
        << "\"physicalLocation\": {\"artifactLocation\": {\"uri\": \""
        << json_escape(f.file) << "\"}, \"region\": {\"startLine\": "
        << (f.line > 0 ? f.line : 1) << "}}}]";
    if (f.suppressed) {
      out << ", \"suppressions\": [{\"kind\": \"inSource\", "
             "\"justification\": \""
          << json_escape(f.reason) << "\"}]";
    }
    out << '}' << (i + 1 < findings.size() ? "," : "") << '\n';
  }
  out << "    ]\n";
  out << "  }]\n";
  out << "}\n";
  return out.str();
}

std::string to_text(const std::vector<Finding>& findings, int files_scanned) {
  const Summary s = summarize(findings, files_scanned);
  std::ostringstream out;
  for (const Finding& f : findings) {
    if (f.suppressed) continue;
    out << f.file << ':' << f.line << ": " << f.rule << ": " << f.message
        << '\n';
  }
  out << "clip-lint: " << s.files_scanned << " files, " << s.unsuppressed
      << " unsuppressed finding" << (s.unsuppressed == 1 ? "" : "s") << ", "
      << s.suppressed << " suppressed\n";
  return out.str();
}

}  // namespace clip::lint
