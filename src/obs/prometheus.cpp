// Prometheus text exposition rendering for MetricsRegistry.
//
// Follows the text format contract: one `# HELP` + `# TYPE` line pair per
// metric family, histogram buckets are *cumulative* and keyed by inclusive
// upper bound (`le`), and every histogram carries the implicit `le="+Inf"`
// bucket equal to `_count`. Our metric names use dots (`sim.runs`);
// Prometheus names are restricted to [a-zA-Z0-9_:], so dots (and anything
// else outside that set) become underscores. Because that mapping is lossy,
// two registry names can sanitize to the same exposition name (`a.b` and
// `a_b`); duplicate families are an invalid exposition, so colliding names
// are de-duplicated with a deterministic `_2`, `_3`, ... suffix (iteration
// is over sorted std::map keys, counters then gauges then histograms, so
// the suffix assignment is stable across runs). The `# HELP` line preserves
// the original registry name, so a scraped family can always be traced back
// to its dotted source series.
#include <cctype>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "obs/metrics.hpp"

// Rendering iterates the registry maps under the same lock metrics.cpp
// takes; the shared @obs_registry label keeps the L2 graph to one node.
// clip-lint: guards(mu_@obs_registry: counters_, gauges_, histograms_)
#include "obs/timeline.hpp"

namespace clip::obs {

namespace {

std::string sanitize_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const auto uc = static_cast<unsigned char>(c);
    out.push_back(std::isalnum(uc) || c == '_' || c == ':' ? c : '_');
  }
  if (!out.empty() && std::isdigit(static_cast<unsigned char>(out.front())))
    out.insert(out.begin(), '_');
  return out;
}

/// Allocates a unique exposition name for `base`, avoiding both names
/// already handed out and the sanitized base names of series not yet
/// rendered (so a de-dup suffix never steals a later family's name).
class NameTable {
 public:
  void reserve_base(const std::string& base) { bases_.insert(base); }

  std::string assign(const std::string& base) {
    std::string n = base;
    int suffix = 2;
    while (taken_.count(n) != 0 ||
           (n != base && bases_.count(n) != 0)) {
      n = base + "_" + std::to_string(suffix);
      ++suffix;
    }
    taken_.insert(n);
    return n;
  }

 private:
  std::multiset<std::string> bases_;
  std::set<std::string> taken_;
};

/// HELP text is free-form but backslashes and newlines must be escaped;
/// registry names are the only dynamic content and stay on one line.
std::string help_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '\\')
      out += "\\\\";
    else if (c == '\n')
      out += "\\n";
    else
      out.push_back(c);
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::render_prometheus() const {
  const std::lock_guard<std::mutex> lock(mu_);
  NameTable names;
  for (const auto& [name, _] : counters_) names.reserve_base(sanitize_name(name));
  for (const auto& [name, _] : gauges_) names.reserve_base(sanitize_name(name));
  for (const auto& [name, _] : histograms_)
    names.reserve_base(sanitize_name(name));

  std::ostringstream out;
  for (const auto& [name, c] : counters_) {
    const std::string n = names.assign(sanitize_name(name));
    out << "# HELP " << n << " clip counter " << help_escape(name) << '\n'
        << "# TYPE " << n << " counter\n"
        << n << ' ' << c->value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    const std::string n = names.assign(sanitize_name(name));
    out << "# HELP " << n << " clip gauge " << help_escape(name) << '\n'
        << "# TYPE " << n << " gauge\n"
        << n << ' ' << format_exact(g->value()) << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    const std::string n = names.assign(sanitize_name(name));
    out << "# HELP " << n << " clip histogram " << help_escape(name) << '\n'
        << "# TYPE " << n << " histogram\n";
    const auto counts = h->bucket_counts();
    const auto& bounds = h->spec().bounds;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      cum += counts[i];
      out << n << "_bucket{le=\"" << format_exact(bounds[i]) << "\"} " << cum
          << '\n';
    }
    cum += counts.back();
    out << n << "_bucket{le=\"+Inf\"} " << cum << '\n'
        << n << "_sum " << format_exact(h->sum()) << '\n'
        << n << "_count " << h->count() << '\n';
  }
  return out.str();
}

}  // namespace clip::obs
