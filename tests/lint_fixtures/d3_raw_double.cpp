// Fixture: D3 must fire on fixed-precision double formatting.
#include <cstdio>
#include <string>

void bad_print(double v) {
  std::printf("%f watts\n", v);  // line 6: D3
}

void bad_report(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "power=%.2f", v);  // line 11: D3
}

std::string bad_literal() {
  return std::to_string(3.1415);  // line 15: D3
}
