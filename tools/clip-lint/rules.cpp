// Rule passes for clip-analyze. Every per-file pass walks the token stream
// of one file; none needs type information — the invariants were chosen so
// their violations are visible at the token level (docs/static-analysis.md
// spells out what each rule can and cannot see). The J/L/E families lean on
// the semantic layer in analysis.hpp: function spans, the ScopeSim flow
// engine, and the directive tables the lexer collected.

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "analysis.hpp"
#include "lint.hpp"

namespace clip::lint {

namespace {

bool path_ends_with(const std::string& path, std::string_view suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

bool is(const Tokens& t, std::size_t i, std::string_view text) {
  return tok_is(t, i, text);
}

bool is_ident(const Tokens& t, std::size_t i) { return tok_ident(t, i); }

/// Opener index for the ")" or "]" at `j`; t.size() when unbalanced.
std::size_t match_back(const Tokens& t, std::size_t j) {
  const std::string& close = t[j].text;
  const std::string open = (close == ")") ? "(" : "[";
  int depth = 0;
  for (std::size_t k = j + 1; k-- > 0;) {
    if (t[k].text == close) ++depth;
    if (t[k].text == open && --depth == 0) return k;
    if (k == 0) break;
  }
  return t.size();
}

// ---------------------------------------------------------------------------
// D1 — wall-clock reads outside the injected-clock seam (src/obs/clock.hpp).
// The simulator's time axis is simulated seconds; a single wall-clock read
// in a decision or export path makes figure output run-dependent.
// ---------------------------------------------------------------------------
void rule_d1(const LexedFile& f, std::vector<Finding>& out) {
  if (path_ends_with(f.path, "src/obs/clock.hpp")) return;
  static const std::set<std::string, std::less<>> kClockIdents = {
      "system_clock", "steady_clock",  "high_resolution_clock",
      "clock_gettime", "gettimeofday", "localtime",
      "gmtime",        "strftime",     "mktime",
      "timespec_get"};
  const Tokens& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kIdent) continue;
    if (kClockIdents.count(t[i].text) != 0) {
      out.push_back({f.path, t[i].line, "D1",
                     "wall-clock source '" + t[i].text +
                         "' outside src/obs/clock.hpp; inject a "
                         "clip::obs::Clock (or simulated time) instead",
                     false,
                     {}});
      continue;
    }
    // Qualified std::time( / std::clock( / ::time( calls.
    if ((t[i].text == "time" || t[i].text == "clock") && is(t, i + 1, "(") &&
        i >= 1 && is(t, i - 1, "::") &&
        (i == 1 || is(t, i - 2, "std") || t[i - 2].kind != Token::Kind::kIdent)) {
      out.push_back({f.path, t[i].line, "D1",
                     "wall-clock call '" + t[i].text +
                         "()' outside src/obs/clock.hpp; inject a "
                         "clip::obs::Clock (or simulated time) instead",
                     false,
                     {}});
    }
  }
}

// ---------------------------------------------------------------------------
// D2 — hash-ordered containers. Iteration order of std::unordered_map/set
// is implementation- and size-dependent, so any iteration can leak
// nondeterministic order into exports, fingerprints or float accumulation.
// Declarations are flagged too: keeping one requires a suppression whose
// reason asserts the container is lookup-only.
// ---------------------------------------------------------------------------
void rule_d2(const LexedFile& f, std::vector<Finding>& out) {
  const Tokens& t = f.tokens;
  std::set<std::string> unordered_names;

  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kIdent ||
        (t[i].text != "unordered_map" && t[i].text != "unordered_set"))
      continue;
    out.push_back({f.path, t[i].line, "D2",
                   "std::" + t[i].text +
                       " has hash-dependent iteration order; use std::map/"
                       "std::set or suppress with a lookup-only reason",
                   false,
                   {}});
    // Collect the declared name: skip <...> then modifiers, expect ident.
    std::size_t j = i + 1;
    if (is(t, j, "<")) {
      int depth = 0;
      for (; j < t.size(); ++j) {
        if (t[j].text == "<") ++depth;
        if (t[j].text == ">" && --depth == 0) {
          ++j;
          break;
        }
      }
    }
    while (is(t, j, "&") || is(t, j, "*") || is(t, j, "const")) ++j;
    if (is_ident(t, j)) unordered_names.insert(t[j].text);
  }
  if (unordered_names.empty()) return;

  for (std::size_t i = 0; i < t.size(); ++i) {
    // Range-for over an unordered container: for ( ... : name ...)
    if (is(t, i, "for") && is(t, i + 1, "(")) {
      int depth = 0;
      std::size_t colon = 0;
      std::size_t close = i + 1;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        if (t[j].text == "(") ++depth;
        if (t[j].text == ")" && --depth == 0) {
          close = j;
          break;
        }
        if (t[j].text == ":" && depth == 1 && colon == 0) colon = j;
      }
      if (colon != 0) {
        for (std::size_t j = colon + 1; j < close; ++j) {
          if (is_ident(t, j) && unordered_names.count(t[j].text) != 0) {
            out.push_back({f.path, t[j].line, "D2",
                           "iteration over hash-ordered container '" +
                               t[j].text + "'",
                           false,
                           {}});
          }
        }
      }
    }
    // Explicit iterator walk: name.begin( / name.cbegin( / rbegin.
    if (is_ident(t, i) && unordered_names.count(t[i].text) != 0 &&
        (is(t, i + 1, ".") || is(t, i + 1, "->")) && i + 2 < t.size()) {
      const std::string& m = t[i + 2].text;
      if (m == "begin" || m == "cbegin" || m == "rbegin" || m == "crbegin") {
        out.push_back({f.path, t[i].line, "D2",
                       "iteration over hash-ordered container '" + t[i].text +
                           "' via ." + m + "()",
                       false,
                       {}});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// D3 — raw double formatting. Fixed-precision conversions (%f/%e/%g,
// std::to_string's fixed six decimals) round doubles before they reach a
// file, so a value that round-trips through CSV stops matching the number
// the simulator computed. Exact exports go through obs::format_exact
// (shortest %.17g); its home file is the one allowed raw conversion site.
// ---------------------------------------------------------------------------
bool has_float_conversion(const std::string& literal) {
  for (std::size_t i = 0; i + 1 < literal.size(); ++i) {
    if (literal[i] != '%') continue;
    std::size_t j = i + 1;
    if (j < literal.size() && literal[j] == '%') {
      i = j;  // %% escape
      continue;
    }
    while (j < literal.size() &&
           (std::string("-+ #0123456789.*'").find(literal[j]) !=
            std::string::npos))
      ++j;
    while (j < literal.size() &&
           (literal[j] == 'l' || literal[j] == 'L' || literal[j] == 'h'))
      ++j;
    if (j < literal.size() &&
        std::string("fFeEgGaA").find(literal[j]) != std::string::npos)
      return true;
  }
  return false;
}

void rule_d3(const LexedFile& f, std::vector<Finding>& out) {
  if (path_ends_with(f.path, "src/obs/timeline.cpp")) return;  // format_exact
  const Tokens& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind == Token::Kind::kString && has_float_conversion(t[i].text)) {
      out.push_back({f.path, t[i].line, "D3",
                     "fixed-precision float conversion in format string " +
                         t[i].text +
                         "; exact output goes through obs::format_exact",
                     false,
                     {}});
    }
    // std::to_string(<float literal ...>): fixed six decimals, lossy.
    if (is(t, i, "to_string") && i >= 2 && is(t, i - 1, "::") &&
        is(t, i - 2, "std") && is(t, i + 1, "(")) {
      int depth = 0;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        if (t[j].text == "(") ++depth;
        if (t[j].text == ")" && --depth == 0) break;
        if (t[j].kind == Token::Kind::kNumber &&
            t[j].text.find("0x") != 0 &&
            (t[j].text.find('.') != std::string::npos ||
             t[j].text.find('e') != std::string::npos ||
             t[j].text.find('E') != std::string::npos)) {
          out.push_back({f.path, t[j].line, "D3",
                         "std::to_string of a floating value formats at a "
                         "fixed six decimals; use obs::format_exact",
                         false,
                         {}});
          break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// D4 — RNG primitives outside the seeded wrapper. clip::Rng (xoshiro256**,
// hand-rolled distributions) is the only randomness source whose streams
// are seeded, splittable and platform-identical; std primitives are either
// unseeded (random_device) or unspecified across standard libraries
// (distributions), and rand() is both.
// ---------------------------------------------------------------------------
void rule_d4(const LexedFile& f, std::vector<Finding>& out) {
  if (path_ends_with(f.path, "src/util/rng.hpp") ||
      path_ends_with(f.path, "src/util/rng.cpp"))
    return;
  static const std::set<std::string, std::less<>> kRngIdents = {
      "random_device",      "mt19937",       "mt19937_64",
      "minstd_rand",        "minstd_rand0",  "default_random_engine",
      "ranlux24",           "ranlux48",      "knuth_b",
      "random_shuffle",     "uniform_real_distribution",
      "uniform_int_distribution", "normal_distribution",
      "bernoulli_distribution"};
  const Tokens& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kIdent) continue;
    if (kRngIdents.count(t[i].text) != 0) {
      out.push_back({f.path, t[i].line, "D4",
                     "std RNG primitive '" + t[i].text +
                         "' outside clip::Rng; draw from a seeded Rng stream",
                     false,
                     {}});
      continue;
    }
    if ((t[i].text == "rand" || t[i].text == "srand") && is(t, i + 1, "(") &&
        (i == 0 || (!is(t, i - 1, ".") && !is(t, i - 1, "->")))) {
      out.push_back({f.path, t[i].line, "D4",
                     "'" + t[i].text +
                         "()' is unseeded global state; draw from a seeded "
                         "clip::Rng stream",
                     false,
                     {}});
    }
  }
}

// ---------------------------------------------------------------------------
// C1 — observer/timeline hooks must be null-guarded. The byte-identity
// contract (detached run == no obs side effects) holds because every hook
// dereference sits behind a single branch; an unguarded dereference is a
// crash on the detached path. Recognized justifications, in source order:
//   if (hook_ ...) <stmt-or-block>        guard over the statement/block
//   if (hook_ == nullptr) return;         early exit guards the rest of scope
//   hook_ = <non-null>;                   assignment guards the rest of scope
//   hook_ && hook_->...  /  hook_ ? ...   same-expression truthiness
// The pass drives ScopeSim (analysis.hpp) — C1 is where the flow engine's
// fact semantics were born, and the fixture suite pins them.
// ---------------------------------------------------------------------------
bool is_hook_name(const std::string& s) {
  static const std::set<std::string, std::less<>> kHooks = {
      "obs_", "observer_", "timeline_", "session_", "sink_", "tracer_"};
  return kHooks.count(s) != 0;
}

void rule_c1(const LexedFile& f, std::vector<Finding>& out) {
  const Tokens& t = f.tokens;
  ScopeSim sim(t);

  for (std::size_t i = 0; i < t.size(); ++i) {
    const std::string& tx = t[i].text;
    sim.step(i);

    // Guard analysis at each `if (...)`.
    if (tx == "if" && is(t, i + 1, "(")) {
      const std::size_t close = find_close_paren(t, i + 1);
      std::vector<std::string> positive;
      std::vector<std::string> negative;
      for (std::size_t j = i + 2; j < close; ++j) {
        if (!is_ident(t, j) || !is_hook_name(t[j].text)) continue;
        const bool negated =
            (j > 0 && is(t, j - 1, "!")) ||
            (is(t, j + 1, "==") && is(t, j + 2, "nullptr"));
        (negated ? negative : positive).push_back(t[j].text);
      }
      if (!positive.empty()) {
        const bool block = is(t, close + 1, "{");
        for (const std::string& name : positive)
          sim.add_fact(name, block ? ScopeSim::FactKind::kBlock
                                   : ScopeSim::FactKind::kStmt);
      }
      if (!negative.empty()) {
        // Does the guarded statement leave the scope?
        bool exits = false;
        if (is(t, close + 1, "{")) {
          int d = 0;
          for (std::size_t j = close + 1; j < t.size(); ++j) {
            if (t[j].text == "{") ++d;
            if (t[j].text == "}" && --d == 0) break;
            if (t[j].text == "return" || t[j].text == "throw" ||
                t[j].text == "continue" || t[j].text == "break" ||
                t[j].text == "abort")
              exits = true;
          }
        } else {
          for (std::size_t j = close + 1;
               j < t.size() && t[j].text != ";"; ++j) {
            if (t[j].text == "return" || t[j].text == "throw" ||
                t[j].text == "continue" || t[j].text == "break" ||
                t[j].text == "abort")
              exits = true;
          }
        }
        if (exits)
          for (const std::string& name : negative)
            sim.add_fact(name, ScopeSim::FactKind::kScope);
      }
    }

    // Assignment establishes non-null for the rest of the scope.
    if (is_ident(t, i) && is_hook_name(tx) && is(t, i + 1, "=") &&
        !is(t, i + 2, "nullptr") &&
        (i == 0 || (!is(t, i - 1, ".") && !is(t, i - 1, "->") &&
                    !is(t, i - 1, "=") && !is(t, i - 1, "!") &&
                    !is(t, i - 1, "<") && !is(t, i - 1, ">")))) {
      sim.add_fact(tx, ScopeSim::FactKind::kScope);
    }

    // The check itself: hook_-> without an active fact or same-expression
    // truth test.
    if (is_ident(t, i) && is_hook_name(tx) && is(t, i + 1, "->")) {
      bool justified = sim.has_fact(tx);
      if (!justified) {
        for (std::size_t j = i; j-- > 0;) {
          const std::string& back = t[j].text;
          if (back == ";" || back == "{" || back == "}") break;
          if (back == tx &&
              (is(t, j + 1, "&&") || is(t, j + 1, "?") ||
               (is(t, j + 1, "!=") && is(t, j + 2, "nullptr")))) {
            justified = true;
            break;
          }
        }
      }
      if (!justified) {
        out.push_back({f.path, t[i].line, "C1",
                       "hook pointer '" + tx +
                           "' dereferenced without a null guard; detached "
                           "runs must stay byte-identical (if (" +
                           tx + ") " + tx + "->...)",
                       false,
                       {}});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// H1 — header hygiene: every header carries #pragma once (or a classic
// include guard), and headers never inject `using namespace` into every
// includer.
// ---------------------------------------------------------------------------
void rule_h1(const LexedFile& f, std::vector<Finding>& out) {
  const Tokens& t = f.tokens;
  if (f.is_header) {
    bool guarded = false;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (is(t, i, "#pragma") && is(t, i + 1, "once")) guarded = true;
      if (is(t, i, "#ifndef") && i + 2 < t.size() && is(t, i + 2, "#define"))
        guarded = true;
    }
    if (!guarded)
      out.push_back({f.path, 1, "H1",
                     "header lacks #pragma once (or an include guard)", false,
                     {}});
  }
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (f.is_header && is(t, i, "using") && is(t, i + 1, "namespace")) {
      out.push_back({f.path, t[i].line, "H1",
                     "'using namespace' in a header leaks into every "
                     "includer",
                     false,
                     {}});
    }
  }
}

// ---------------------------------------------------------------------------
// Shared write detection for J1/L1. The identifier at `i` is a tracked
// field; is this occurrence a mutation? Token shapes recognized:
//   x = v        x op= v       x++ / ++x (lexed `+ +` / `- -`)
//   x[i] = v     x[i] op= v    x[i]++
//   x.push_back(...) and the other mutating container methods
// Occurrences reached through `.`/`->`/`::` belong to another object and
// are skipped (tracked fields are annotated per translation unit, where
// member access is spelled bare).
// ---------------------------------------------------------------------------
bool is_mutating_method(const std::string& m) {
  static const std::set<std::string, std::less<>> kMutators = {
      "push_back",  "pop_back",  "emplace_back", "emplace",   "push_front",
      "pop_front",  "clear",     "erase",        "resize",    "assign",
      "insert",     "swap"};
  return kMutators.count(m) != 0;
}

bool is_write_at(const Tokens& t, std::size_t i) {
  if (i > 0 && (is(t, i - 1, ".") || is(t, i - 1, "->") || is(t, i - 1, "::")))
    return false;
  auto assign_op_at = [&](std::size_t j) {
    if (is(t, j, "=")) return true;  // `==`/`!=` lex as single tokens
    static const std::string kOps = "+-*/%&|^";
    return j < t.size() && t[j].text.size() == 1 &&
           kOps.find(t[j].text[0]) != std::string::npos && is(t, j + 1, "=");
  };
  auto incdec_at = [&](std::size_t j) {
    return (is(t, j, "+") && is(t, j + 1, "+")) ||
           (is(t, j, "-") && is(t, j + 1, "-"));
  };
  if (assign_op_at(i + 1) || incdec_at(i + 1)) return true;
  if (i >= 2 && incdec_at(i - 2)) return true;  // prefix ++x / --x
  if (is(t, i + 1, "[")) {
    int depth = 0;
    for (std::size_t j = i + 1; j < t.size(); ++j) {
      if (t[j].text == "[") ++depth;
      if (t[j].text == "]" && --depth == 0)
        return assign_op_at(j + 1) || incdec_at(j + 1);
    }
    return false;
  }
  if ((is(t, i + 1, ".") || is(t, i + 1, "->")) && i + 2 < t.size() &&
      is_ident(t, i + 2) && is(t, i + 3, "(") &&
      is_mutating_method(t[i + 2].text))
    return true;
  return false;
}

// ---------------------------------------------------------------------------
// J1 — crash-consistency coverage. In a file that declares
// `journaled(f1, f2, ...)`, every function that mutates a tracked field
// must reach the journal: either an `<ident starting with "journal">.append`
// / `->append` call in its own body, or a call to another function in the
// same file that does (computed as a fixed point over the intra-file call
// graph, so helpers like jlog/append_or_verify propagate the property to
// their callers). One finding per function, at the first unjournaled
// mutation, naming every mutated field.
// ---------------------------------------------------------------------------
bool journal_primitive_at(const Tokens& t, std::size_t i) {
  if (!is_ident(t, i) || t[i].text.rfind("journal", 0) != 0) return false;
  return (is(t, i + 1, ".") || is(t, i + 1, "->")) &&
         is(t, i + 2, "append") && is(t, i + 3, "(");
}

void rule_j1(const LexedFile& f, std::vector<Finding>& out) {
  if (f.journaled_fields.empty()) return;
  const Tokens& t = f.tokens;
  const std::set<std::string> tracked(f.journaled_fields.begin(),
                                      f.journaled_fields.end());
  const std::vector<FunctionSpan> spans = find_functions(t);
  std::set<std::string> defined_names;
  for (const FunctionSpan& s : spans) defined_names.insert(s.name);

  struct Info {
    bool journals = false;
    std::set<std::string> calls;
    std::set<std::string> mutated;
    int first_line = 0;
  };
  std::vector<Info> infos(spans.size());

  for (std::size_t s = 0; s < spans.size(); ++s) {
    Info& info = infos[s];
    for (std::size_t i = spans[s].body_begin; i <= spans[s].body_end &&
                                              i < t.size();
         ++i) {
      if (journal_primitive_at(t, i)) info.journals = true;
      if (is_ident(t, i) && is(t, i + 1, "(") && !is(t, i - 1, ".") &&
          defined_names.count(t[i].text) != 0)
        info.calls.insert(t[i].text);
      if (is_ident(t, i) && tracked.count(t[i].text) != 0 &&
          is_write_at(t, i)) {
        if (info.mutated.empty()) info.first_line = t[i].line;
        info.mutated.insert(t[i].text);
      }
    }
  }

  // Fixed point over function NAMES (overloads share the property): a
  // function journals if any same-named span journals or any callee does.
  std::set<std::string> journaling;
  for (std::size_t s = 0; s < spans.size(); ++s)
    if (infos[s].journals) journaling.insert(spans[s].name);
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t s = 0; s < spans.size(); ++s) {
      if (journaling.count(spans[s].name) != 0) continue;
      for (const std::string& callee : infos[s].calls) {
        if (journaling.count(callee) != 0) {
          journaling.insert(spans[s].name);
          changed = true;
          break;
        }
      }
    }
  }

  for (std::size_t s = 0; s < spans.size(); ++s) {
    const Info& info = infos[s];
    if (info.mutated.empty() || journaling.count(spans[s].name) != 0)
      continue;
    std::string fields;
    for (const std::string& m : info.mutated)
      fields += (fields.empty() ? "" : ", ") + m;
    out.push_back({f.path, info.first_line, "J1",
                   "function '" + spans[s].name +
                       "' mutates journaled state (" + fields +
                       ") but reaches no journal append on any intra-file "
                       "path; a crash here is unrecoverable",
                   false,
                   {}});
  }
}

// ---------------------------------------------------------------------------
// L1 — lock discipline over `guards(mutex[@label]: fields...)` declarations:
// a write to a guarded field is only legal while a lock_guard/scoped_lock/
// unique_lock over its mutex is in scope. Reads are not flagged (several
// hot paths read racily on purpose and document it); the write set is what
// corrupts state. The same walk records lock-order edges (mutex A held
// while B is acquired) for the project-level L2 cycle check.
// ---------------------------------------------------------------------------
void rule_l1(const LexedFile& f, std::vector<Finding>& out,
             std::vector<LockEdge>* edges) {
  if (f.guards.empty()) return;
  const Tokens& t = f.tokens;

  std::map<std::string, const GuardDecl*> field_guard;
  std::set<std::string> tracked_mutexes;
  std::map<std::string, std::string> node_id;
  for (const GuardDecl& g : f.guards) {
    tracked_mutexes.insert(g.mutex);
    node_id[g.mutex] =
        g.label.empty() ? f.path + ":" + g.mutex : "@" + g.label;
    for (const std::string& field : g.fields) field_guard[field] = &g;
  }

  ScopeSim sim(t);
  struct Held {
    std::string mutex;
    int depth;
  };
  std::vector<Held> held;

  auto holds = [&](const std::string& mutex) {
    return std::any_of(held.begin(), held.end(),
                       [&](const Held& h) { return h.mutex == mutex; });
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    sim.step(i);
    std::erase_if(held, [&](const Held& h) { return sim.brace() < h.depth; });

    const std::string& tx = t[i].text;
    if (is_ident(t, i) && (tx == "lock_guard" || tx == "scoped_lock" ||
                           tx == "unique_lock")) {
      std::size_t j = i + 1;
      if (is(t, j, "<")) {
        int depth = 0;
        for (; j < t.size(); ++j) {
          if (t[j].text == "<") ++depth;
          if (t[j].text == ">" && --depth == 0) {
            ++j;
            break;
          }
        }
      }
      if (is_ident(t, j) && is(t, j + 1, "(")) {
        const std::size_t close = find_close_paren(t, j + 1);
        for (std::size_t k = j + 2; k < close; ++k) {
          if (!is_ident(t, k) || tracked_mutexes.count(t[k].text) == 0)
            continue;
          if (edges != nullptr) {
            for (const Held& h : held)
              if (h.mutex != t[k].text)
                edges->push_back(
                    {node_id[h.mutex], node_id[t[k].text], t[k].line});
          }
          held.push_back({t[k].text, sim.brace()});
        }
      }
    }

    if (is_ident(t, i) && field_guard.count(tx) != 0 && is_write_at(t, i)) {
      const GuardDecl* g = field_guard[tx];
      if (!holds(g->mutex)) {
        out.push_back({f.path, t[i].line, "L1",
                       "write to '" + tx + "' (guarded by '" + g->mutex +
                           "') outside a lock_guard/scoped_lock scope",
                       false,
                       {}});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// E1 — discarded fallible results. Files declare their fallible calls via
// `fallible(name, ...)` (a token-level tool cannot see return types, so
// fallibility is declared, not guessed); a declared call whose whole
// statement is the bare call — not assigned, tested, returned, or cast to
// void — silently swallows the failure. Calls inside a try block are
// exempt: the handler is the consumer there.
// ---------------------------------------------------------------------------
void rule_e1(const LexedFile& f, std::vector<Finding>& out) {
  if (f.fallible_names.empty()) return;
  const Tokens& t = f.tokens;
  const std::set<std::string> tracked(f.fallible_names.begin(),
                                      f.fallible_names.end());
  ScopeSim sim(t);

  for (std::size_t i = 0; i < t.size(); ++i) {
    sim.step(i);
    if (!is_ident(t, i) || tracked.count(t[i].text) == 0 ||
        !is(t, i + 1, "("))
      continue;
    const std::size_t close = find_close_paren(t, i + 1);
    if (close >= t.size() || !is(t, close + 1, ";")) continue;  // consumed

    // Walk back to the start of the postfix chain (`a.b->c(...).load(...)`).
    std::size_t s = i;
    while (s >= 2 && (is(t, s - 1, ".") || is(t, s - 1, "->") ||
                      is(t, s - 1, "::"))) {
      if (is_ident(t, s - 2)) {
        s -= 2;
        continue;
      }
      if (is(t, s - 2, ")") || is(t, s - 2, "]")) {
        const std::size_t open = match_back(t, s - 2);
        if (open == t.size()) break;
        if (open >= 1 && is_ident(t, open - 1)) {
          s = open - 1;
          continue;
        }
        s = open;
      }
      break;
    }
    if (s == 0) continue;

    const std::string& prev = t[s - 1].text;
    bool stmt_position = prev == ";" || prev == "{" || prev == "}" ||
                         prev == "else" || prev == "do";
    if (prev == ")") {
      const std::size_t open = match_back(t, s - 1);
      if (open != t.size()) {
        if (open >= 1 &&
            (is(t, open - 1, "if") || is(t, open - 1, "while") ||
             is(t, open - 1, "for") || is(t, open - 1, "switch"))) {
          stmt_position = true;  // unbraced body of a control statement
        }
        // else: a cast — `(void)x.load()` and friends consume explicitly.
      }
    }
    if (!stmt_position || sim.in_try()) continue;

    out.push_back({f.path, t[i].line, "E1",
                   "result of fallible call '" + t[i].text +
                       "' is discarded; check it, or cast to void with a "
                       "comment saying why failure is acceptable",
                   false,
                   {}});
  }
}

// ---------------------------------------------------------------------------
// Fact extraction for the project passes.
// ---------------------------------------------------------------------------
void extract_facts(const LexedFile& f, FileFacts& facts) {
  const Tokens& t = f.tokens;
  // Produced journal kinds: jlog("kind"...) / append_or_verify("kind"...)
  // call sites with a literal first argument (the repo convention — jlog's
  // own parameter forwarding has an identifier there and is skipped).
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (!is_ident(t, i) ||
        (t[i].text != "jlog" && t[i].text != "append_or_verify"))
      continue;
    if (!is(t, i + 1, "(") || t[i + 2].kind != Token::Kind::kString) continue;
    const std::string& lit = t[i + 2].text;
    if (lit.size() < 2) continue;
    facts.produced_kinds.push_back(
        {lit.substr(1, lit.size() - 2), t[i].line});
  }
  // Registered kinds: every string literal inside known_record_kinds().
  for (const FunctionSpan& s : find_functions(t)) {
    if (s.name != "known_record_kinds") continue;
    for (std::size_t i = s.body_begin; i <= s.body_end && i < t.size(); ++i) {
      if (t[i].kind != Token::Kind::kString || t[i].text.size() < 2) continue;
      facts.registered_kinds.push_back(
          {t[i].text.substr(1, t[i].text.size() - 2), t[i].line});
    }
  }
}

// ---------------------------------------------------------------------------
// Suppression machinery shared by run_rules and analyze_source.
// ---------------------------------------------------------------------------
bool names_project_rule(const Suppression& sup) {
  return std::any_of(sup.rules.begin(), sup.rules.end(),
                     [](const std::string& r) { return is_project_rule(r); });
}

void run_per_file_rules(const LexedFile& f, std::vector<Finding>& findings,
                        std::vector<LockEdge>* edges) {
  rule_d1(f, findings);
  rule_d2(f, findings);
  rule_d3(f, findings);
  rule_d4(f, findings);
  rule_c1(f, findings);
  rule_h1(f, findings);
  rule_j1(f, findings);
  rule_l1(f, findings, edges);
  rule_e1(f, findings);
}

void validate_suppressions(const LexedFile& f,
                           std::vector<Finding>& findings) {
  const auto& rules = known_rules();
  for (const Suppression& sup : f.suppressions) {
    if (sup.rules.empty()) {
      findings.push_back({f.path, sup.comment_line, "LINT",
                          "suppression lists no rules", false,
                          {}});
    }
    for (const std::string& r : sup.rules) {
      if (std::find(rules.begin(), rules.end(), r) == rules.end()) {
        findings.push_back({f.path, sup.comment_line, "LINT",
                            "suppression names unknown rule '" + r + "'",
                            false,
                            {}});
      }
    }
    if (sup.reason.empty()) {
      findings.push_back(
          {f.path, sup.comment_line, "LINT",
           "suppression without a reason; write `// clip-lint: allow(RULE) "
           "why this is safe`",
           false,
           {}});
    }
  }
}

void apply_suppressions(LexedFile& f, std::vector<Finding>& findings) {
  for (Finding& fi : findings) {
    if (fi.rule == "LINT") continue;  // hygiene findings are not suppressible
    if (fi.suppressed) continue;
    for (Suppression& sup : f.suppressions) {
      if (sup.reason.empty()) continue;
      if (std::find(sup.rules.begin(), sup.rules.end(), fi.rule) ==
          sup.rules.end())
        continue;
      if (!sup.file_scope && sup.target_line != fi.line) continue;
      fi.suppressed = true;
      fi.reason = sup.reason;
      sup.used = true;
      break;
    }
  }
}

void flag_unused_suppressions(const LexedFile& f,
                              std::vector<Finding>& findings) {
  const auto& rules = known_rules();
  for (const Suppression& sup : f.suppressions) {
    if (sup.used || sup.reason.empty() || sup.rules.empty()) continue;
    // Project-rule suppressions can only be judged once every file's facts
    // are in — project_rules() owns their unused check.
    if (names_project_rule(sup)) continue;
    bool all_known = true;
    for (const std::string& r : sup.rules)
      if (std::find(rules.begin(), rules.end(), r) == rules.end())
        all_known = false;
    if (!all_known) continue;
    findings.push_back({f.path, sup.comment_line, "LINT",
                        "suppression never matched a finding; delete it",
                        false,
                        {}});
  }
}

void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
}

}  // namespace

const std::vector<std::string>& known_rules() {
  static const std::vector<std::string> kRules = {
      "D1", "D2", "D3", "D4", "C1", "H1",
      "J1", "J2", "L1", "L2", "E1", "LINT"};
  return kRules;
}

bool is_project_rule(std::string_view rule) {
  return rule == "J2" || rule == "L2";
}

std::string rule_description(const std::string& rule) {
  static const std::map<std::string, std::string> kDescriptions = {
      {"D1", "wall-clock read outside the injected-clock seam"},
      {"D2", "hash-ordered container declaration or iteration"},
      {"D3", "fixed-precision double formatting outside obs::format_exact"},
      {"D4", "std RNG primitive outside the seeded clip::Rng wrapper"},
      {"C1", "observer/timeline hook dereference without a null guard"},
      {"H1", "header hygiene: include guard and no using-namespace"},
      {"J1", "journaled state mutated with no journal append on any path"},
      {"J2", "journal record kind missing from known_record_kinds()"},
      {"L1", "write to a guarded field outside its lock scope"},
      {"L2", "lock-order cycle across tracked mutexes"},
      {"E1", "result of a declared-fallible call discarded"},
      {"LINT", "suppression/directive hygiene"}};
  const auto it = kDescriptions.find(rule);
  return it == kDescriptions.end() ? std::string("unknown rule") : it->second;
}

std::vector<Finding> run_rules(LexedFile& f) {
  std::vector<Finding> findings = f.lex_findings;
  run_per_file_rules(f, findings, nullptr);
  validate_suppressions(f, findings);
  apply_suppressions(f, findings);
  flag_unused_suppressions(f, findings);
  sort_findings(findings);
  return findings;
}

std::vector<Finding> lint_source(std::string_view source, std::string path) {
  LexedFile f = lex(source, std::move(path));
  return run_rules(f);
}

FileResult analyze_source(std::string_view source, std::string path) {
  LexedFile f = lex(source, std::move(path));
  FileResult r;
  r.path = f.path;
  r.findings = f.lex_findings;
  run_per_file_rules(f, r.findings, &r.facts.lock_edges);
  validate_suppressions(f, r.findings);
  apply_suppressions(f, r.findings);
  flag_unused_suppressions(f, r.findings);
  sort_findings(r.findings);
  extract_facts(f, r.facts);
  for (const Suppression& sup : f.suppressions)
    if (names_project_rule(sup)) r.project_suppressions.push_back(sup);
  return r;
}

}  // namespace clip::lint
