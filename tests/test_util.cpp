// Unit tests for clip::util — units, RNG, strings, tables, CSV.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace clip {
namespace {

using namespace clip::literals;

// ---------------------------------------------------------------- units ----

TEST(Units, ArithmeticOnLikeQuantities) {
  const Watts a(100.0), b(20.0);
  EXPECT_DOUBLE_EQ((a + b).value(), 120.0);
  EXPECT_DOUBLE_EQ((a - b).value(), 80.0);
  EXPECT_DOUBLE_EQ((a * 2.0).value(), 200.0);
  EXPECT_DOUBLE_EQ((2.0 * a).value(), 200.0);
  EXPECT_DOUBLE_EQ((a / 4.0).value(), 25.0);
}

TEST(Units, RatioOfLikeQuantitiesIsDimensionless) {
  const double ratio = Watts(150.0) / Watts(50.0);
  EXPECT_DOUBLE_EQ(ratio, 3.0);
}

TEST(Units, PowerTimesTimeIsEnergy) {
  const Joules e = Watts(50.0) * Seconds(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 500.0);
  EXPECT_DOUBLE_EQ((Seconds(10.0) * Watts(50.0)).value(), 500.0);
}

TEST(Units, EnergyDividedByTimeIsPower) {
  EXPECT_DOUBLE_EQ((Joules(500.0) / Seconds(10.0)).value(), 50.0);
}

TEST(Units, EnergyDividedByPowerIsTime) {
  EXPECT_DOUBLE_EQ((Joules(500.0) / Watts(50.0)).value(), 10.0);
}

TEST(Units, ComparisonOperators) {
  EXPECT_LT(Watts(10.0), Watts(20.0));
  EXPECT_GE(Watts(20.0), Watts(20.0));
  EXPECT_EQ(GHz(2.3), GHz(2.3));
}

TEST(Units, UserDefinedLiterals) {
  EXPECT_DOUBLE_EQ((120.0_W).value(), 120.0);
  EXPECT_DOUBLE_EQ((2.3_GHz).value(), 2.3);
  EXPECT_DOUBLE_EQ((1.5_s).value(), 1.5);
  EXPECT_DOUBLE_EQ((34.0_GBps).value(), 34.0);
  EXPECT_DOUBLE_EQ((180_W).value(), 180.0);
}

TEST(Units, CompoundAssignment) {
  Watts w(10.0);
  w += Watts(5.0);
  EXPECT_DOUBLE_EQ(w.value(), 15.0);
  w -= Watts(3.0);
  EXPECT_DOUBLE_EQ(w.value(), 12.0);
  w *= 2.0;
  EXPECT_DOUBLE_EQ(w.value(), 24.0);
}

TEST(Units, StreamOutput) {
  std::ostringstream os;
  os << Watts(42.5);
  EXPECT_EQ(os.str(), "42.5 W");
}

// ----------------------------------------------------------------- check ----

TEST(Check, RequireThrowsPreconditionError) {
  EXPECT_THROW(CLIP_REQUIRE(false, "boom"), PreconditionError);
}

TEST(Check, EnsureThrowsInvariantError) {
  EXPECT_THROW(CLIP_ENSURE(false, "boom"), InvariantError);
}

TEST(Check, PassingConditionsDoNotThrow) {
  EXPECT_NO_THROW(CLIP_REQUIRE(true, "fine"));
  EXPECT_NO_THROW(CLIP_ENSURE(true, "fine"));
}

TEST(Check, MessageContainsExpressionAndContext) {
  try {
    CLIP_REQUIRE(1 == 2, "context message");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("context message"), std::string::npos);
  }
}

// ------------------------------------------------------------------- rng ----

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ZeroSeedIsNotDegenerate) {
  Rng r(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 32; ++i) seen.insert(r.next_u64());
  EXPECT_GT(seen.size(), 30u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng r(11);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += r.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(3, 6);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values appear
}

TEST(Rng, UniformIntSingleton) {
  Rng r(17);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(42, 42), 42);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng r(19);
  double sum = 0.0, sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParams) {
  Rng r(23);
  double acc = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) acc += r.normal(10.0, 2.0);
  EXPECT_NEAR(acc / n, 10.0, 0.1);
}

TEST(Rng, NormalRejectsNegativeStddev) {
  Rng r(1);
  EXPECT_THROW(r.normal(0.0, -1.0), PreconditionError);
}

TEST(Rng, LognormalIsPositive) {
  Rng r(29);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(r.lognormal(0.0, 0.5), 0.0);
}

TEST(Rng, SplitStreamsAreIndependentAndReproducible) {
  Rng a(31);
  Rng b(31);
  Rng as = a.split();
  Rng bs = b.split();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(as.next_u64(), bs.next_u64());
  // The parent stream continues differently from the split child.
  EXPECT_NE(a.next_u64(), as.next_u64());
}

TEST(Rng, BoundsValidation) {
  Rng r(1);
  EXPECT_THROW(r.uniform(5.0, 1.0), PreconditionError);
  EXPECT_THROW(r.uniform_int(5, 1), PreconditionError);
}

// --------------------------------------------------------------- strings ----

TEST(Strings, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(1.0, 0), "1");
}

TEST(Strings, FormatPercentSigned) {
  EXPECT_EQ(format_percent(0.234), "+23.4%");
  EXPECT_EQ(format_percent(-0.05), "-5.0%");
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcdef", 4), "abcdef");  // no truncation
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
}

TEST(Strings, CsvEscapeQuotesSpecials) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

// ----------------------------------------------------------------- table ----

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name    value"), std::string::npos);
  EXPECT_NE(out.find("longer  22"), std::string::npos);
}

TEST(Table, RejectsRaggedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), PreconditionError);
}

TEST(Table, MixedCellTypes) {
  Table t({"s", "d", "i"});
  t.add({"str", 3.14159, 42});
  EXPECT_EQ(t.row_count(), 1u);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("3.142"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1,5", "x"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n\"1,5\",x\n");
}

TEST(Table, TitleIsPrinted) {
  Table t({"c"});
  t.set_title("My Title");
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("My Title"), std::string::npos);
}

// ------------------------------------------------------------------- csv ----

class CsvRoundTrip : public ::testing::Test {
 protected:
  std::filesystem::path path_ =
      std::filesystem::temp_directory_path() / "clip_test_roundtrip.csv";
  void TearDown() override { std::filesystem::remove(path_); }
};

TEST_F(CsvRoundTrip, WriteThenReadPreservesContent) {
  CsvDocument doc;
  doc.header = {"name", "value"};
  doc.rows = {{"a", "1"}, {"with,comma", "2"}, {"with \"quote\"", "3"}};
  write_csv(path_, doc);
  const CsvDocument back = read_csv(path_);
  EXPECT_EQ(back.header, doc.header);
  EXPECT_EQ(back.rows, doc.rows);
}

TEST_F(CsvRoundTrip, ColumnIndexLookup) {
  CsvDocument doc;
  doc.header = {"x", "y", "z"};
  EXPECT_EQ(doc.column_index("y"), 1);
  EXPECT_EQ(doc.column_index("nope"), -1);
}

TEST(Csv, ParseLineHandlesQuotedCommas) {
  const auto fields = parse_csv_line("a,\"b,c\",d");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "b,c");
}

TEST(Csv, ParseLineHandlesEscapedQuotes) {
  const auto fields = parse_csv_line("\"say \"\"hi\"\"\",x");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "say \"hi\"");
}

TEST(Csv, ReadMissingFileThrows) {
  EXPECT_THROW(read_csv("/nonexistent/definitely/not/here.csv"),
               PreconditionError);
}

TEST_F(CsvRoundTrip, RaggedRowRejected) {
  std::ofstream os(path_);
  os << "a,b\n1\n";
  os.close();
  EXPECT_THROW(read_csv(path_), PreconditionError);
}

}  // namespace
}  // namespace clip
