// Fixture: D2 must fire on unordered-container declarations and iteration.
#include <string>
#include <unordered_map>

double sum_values(const std::unordered_map<std::string, double>& m) {
  // The parameter declaration on line 5 is one D2 finding; the range-for
  // below iterates in hash order — the exact failure mode D2 exists for.
  double total = 0.0;
  for (const auto& [k, v] : m) total += v;  // line 9: D2
  return total;
}

int first_key() {
  std::unordered_map<int, int> table;  // line 14: D2
  table[3] = 4;
  return table.begin()->first;  // line 16: D2
}
