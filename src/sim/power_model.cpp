#include "sim/power_model.hpp"

#include <cmath>

#include "util/check.hpp"

namespace clip::sim {

Watts PowerModel::core_power(double f_rel, double utilization,
                             double compute_intensity) const {
  CLIP_REQUIRE(f_rel > 0.0 && f_rel <= 1.5, "f_rel out of range");
  CLIP_REQUIRE(utilization >= 0.0 && utilization <= 1.0,
               "utilization in [0,1]");
  const double activity =
      spec_->core_power_floor +
      (1.0 - spec_->core_power_floor) * utilization * compute_intensity;
  return Watts(spec_->core_max_w * activity *
               std::pow(f_rel, spec_->power_exponent));
}

Watts PowerModel::cpu_power(const NodeActivity& a) const {
  double total = 0.0;
  const Watts per_core =
      core_power(a.f_rel, a.utilization, a.compute_intensity);
  for (int threads : a.placement.threads_per_socket) {
    if (threads > 0) {
      total += spec_->socket_base_w +
               threads * per_core.value() * a.cpu_load_multiplier;
    } else {
      total += spec_->socket_parked_w;
    }
  }
  return Watts(total);
}

Watts PowerModel::mem_power(const NodeActivity& a) const {
  double total = 0.0;
  const int active = a.placement.active_sockets();
  CLIP_ENSURE(active > 0, "memory power needs at least one active socket");
  const double activity_w = a.achieved_bw_gbps * spec_->mem_w_per_gbps();
  for (int threads : a.placement.threads_per_socket) {
    if (threads > 0) {
      total += spec_->mem_base_w_per_socket + activity_w / active;
    } else {
      total += spec_->mem_parked_w_per_socket;
    }
  }
  return Watts(total);
}

Watts PowerModel::node_power(const NodeActivity& a) const {
  return cpu_power(a) + mem_power(a);
}

}  // namespace clip::sim
